#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gly {

namespace {
const std::string kEmptyString;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kIOError: return "io-error";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kAlreadyExists: return "already-exists";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kNotImplemented: return "not-implemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kValidationFailed: return "validation-failed";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kUntested: return "untested";
  }
  return "unknown";
}

bool StatusCodeFromString(std::string_view name, StatusCode* code) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kIOError,      StatusCode::kNotFound,
      StatusCode::kAlreadyExists, StatusCode::kResourceExhausted,
      StatusCode::kNotImplemented, StatusCode::kInternal,
      StatusCode::kTimeout,      StatusCode::kValidationFailed,
      StatusCode::kCancelled,    StatusCode::kUntested,
  };
  for (StatusCode c : kAll) {
    if (StatusCodeToString(c) == name) {
      *code = c;
      return true;
    }
  }
  return false;
}

Status::Status(StatusCode code, std::string message)
    : state_(std::make_unique<State>(State{code, std::move(message)})) {}

Status::Status(const Status& other)
    : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return state_ ? state_->message : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(state_->code));
  out += ": ";
  out += state_->message;
  return out;
}

Status Status::WithPrefix(std::string_view prefix) const {
  if (ok()) return *this;
  std::string msg(prefix);
  msg += ": ";
  msg += state_->message;
  return Status(state_->code, std::move(msg));
}

void Status::Check() const {
  if (!ok()) {
    std::fprintf(stderr, "Fatal status: %s\n", ToString().c_str());
    std::abort();
  }
}

}  // namespace gly
