// Cooperative cancellation & deadline propagation.
//
// The paper treats platform failures (timeouts, crashes, memory exhaustion)
// as first-class benchmark outcomes — "Missing values indicate failures".
// Recording a timeout is not enough, though: a "killed" cell that keeps
// running on a background thread keeps consuming CPU, memory-budget charge,
// and tracer/metrics state while the next cell is being measured — exactly
// the cross-cell interference that invalidates a matrix. This module gives
// the harness a way to stop a runaway cell *for real*:
//
//  * CancelToken — a thread-safe, reason-carrying flag the harness arms and
//    the engines poll at bounded-work intervals (per Pregel superstep and
//    steal-chunk, between MapReduce tasks and reduce groups, per dataflow
//    operator and shuffle chunk, per graph-database import batch and
//    algorithm iteration, per ETL chunk). A poll on a null token is a
//    pointer test; on a live token one relaxed atomic load — free enough
//    for inner loops, same budget as the fault-injection and trace hooks.
//
//  * A progress heartbeat on the token: engines bump it whenever they make
//    forward progress (a superstep, a job, an operator, an iteration). The
//    harness watchdog cancels cells whose heartbeat stops advancing for
//    `stall_timeout_s` — catching livelock and stalls that never trip the
//    wall-clock deadline.
//
//  * Deadline — a steady-clock helper for "cancel after N seconds".
//
// Signal-safety: Cancel(reason) with no detail performs only lock-free
// atomic stores, so a SIGINT handler may arm a token directly. The detail
// string (mutex-guarded) is only for regular-context callers.
//
// Cancellation is cooperative: the engines return Status::Cancelled /
// Status::Timeout at the next poll; they are never killed mid-state. The
// attempt thread therefore unwinds normally (releasing ScopedCharge budget
// holdings, closing trace spans) and the harness can *join* it within a
// bounded grace period instead of detaching it.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace gly {

/// Why a token was cancelled.
enum class CancelReason : uint8_t {
  kNone = 0,         ///< not cancelled
  kDeadline = 1,     ///< wall-clock budget (timeout_s) exceeded
  kHarnessStop = 2,  ///< harness-level stop (Ctrl-C, shutdown)
  kStall = 3,        ///< watchdog: progress heartbeat stopped advancing
};

/// "deadline" | "harness_stop" | "stall" | "none".
const char* CancelReasonName(CancelReason reason);

/// Thread-safe cancellation flag with a reason and a progress heartbeat.
/// Arm once (first Cancel wins); poll from any number of threads.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms the token; returns true for the winning (first) caller, false
  /// when it was already cancelled (the later reason is ignored).
  /// Lock-free — safe from a signal handler.
  bool Cancel(CancelReason reason) {
    uint8_t expected = 0;
    return reason_.compare_exchange_strong(
        expected, static_cast<uint8_t>(reason), std::memory_order_release,
        std::memory_order_relaxed);
  }

  /// Arms the token with a human-readable detail (regular context only —
  /// takes a mutex for the string). The detail is recorded only by the
  /// winning caller, so reason and detail always describe the same cancel.
  bool Cancel(CancelReason reason, const std::string& detail);

  /// One relaxed load; the poll engines use in inner loops.
  bool cancelled() const {
    return reason_.load(std::memory_order_acquire) !=
           static_cast<uint8_t>(CancelReason::kNone);
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(reason_.load(std::memory_order_acquire));
  }

  /// Detail passed to Cancel ("" when none was given).
  std::string detail() const;

  /// OK while not cancelled; afterwards the cancellation as a Status:
  /// deadline/stall map to kTimeout (transient by construction — the
  /// harness retry policy may re-execute the cell), harness stop to
  /// kCancelled (final). The engines return this at their next poll.
  Status StatusIfCancelled() const {
    if (!cancelled()) return Status::OK();
    return ToStatus();
  }

  /// The cancellation as a Status (kInternal if not actually cancelled).
  Status ToStatus() const;

  /// Progress heartbeat: engines bump it on forward progress (superstep,
  /// job, operator, iteration, import batch); the harness stall watchdog
  /// cancels the attempt when it stops advancing. Const because it is a
  /// progress side-channel, not a logical mutation — engines that only
  /// hold a `const CancelToken*` may still report progress.
  void Heartbeat() const { heartbeats_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint8_t> reason_{0};
  mutable std::atomic<uint64_t> heartbeats_{0};
  mutable std::mutex mu_;
  std::string detail_;
};

/// Polls a possibly-null token: OK when null or not cancelled. The "no
/// token" fast path is a pointer test, so un-supervised runs pay nothing.
inline Status CheckCancel(const CancelToken* token) {
  if (token == nullptr || !token->cancelled()) return Status::OK();
  return token->ToStatus();
}

/// True when `token` is set and cancelled — the cheap form for loops that
/// only need to bail out (the full Status is built once, by the caller).
inline bool Cancelled(const CancelToken* token) {
  return token != nullptr && token->cancelled();
}

/// A steady-clock deadline. Never() never expires.
class Deadline {
 public:
  /// A deadline `seconds` from now (<= 0 expires immediately).
  static Deadline After(double seconds);
  /// A deadline that never expires.
  static Deadline Never() { return Deadline(); }

  bool never() const { return never_; }
  bool expired() const;
  /// Seconds until expiry (negative once expired; +inf for Never()).
  double remaining_seconds() const;

 private:
  Deadline() = default;
  explicit Deadline(std::chrono::steady_clock::time_point at)
      : at_(at), never_(false) {}

  std::chrono::steady_clock::time_point at_{};
  bool never_ = true;
};

}  // namespace gly
