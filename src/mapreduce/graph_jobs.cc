#include "mapreduce/graph_jobs.h"

#include <algorithm>
#include <filesystem>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "graph/io.h"

namespace gly::mapreduce {

namespace fs = std::filesystem;

namespace {

// ------------------------------------------------------------ record codec
//
// Two record flavors share the (key = vertex id) keyspace:
//   'G' — graph record: vertex state + adjacency
//   'M' — message record: (i64, double) payload
constexpr char kGraphTag = 'G';
constexpr char kMessageTag = 'M';

struct GraphRecord {
  int64_t state = 0;
  double aux = 0.0;
  uint8_t changed = 0;
  std::vector<VertexId> adjacency;
};

std::string EncodeGraphRecord(const GraphRecord& rec) {
  std::string out;
  out.push_back(kGraphTag);
  ValueWriter w(&out);
  w.PutI64(rec.state);
  w.PutDouble(rec.aux);
  w.PutU32(rec.changed);
  w.PutU32(static_cast<uint32_t>(rec.adjacency.size()));
  for (VertexId v : rec.adjacency) w.PutU32(v);
  return out;
}

Result<GraphRecord> DecodeGraphRecord(const std::string& value) {
  if (value.empty() || value[0] != kGraphTag) {
    return Status::InvalidArgument("not a graph record");
  }
  // Skip the tag byte by re-reading through a trimmed view.
  std::string body = value.substr(1);
  ValueReader br(body);
  GraphRecord rec;
  GLY_ASSIGN_OR_RETURN(rec.state, br.GetI64());
  GLY_ASSIGN_OR_RETURN(rec.aux, br.GetDouble());
  GLY_ASSIGN_OR_RETURN(uint32_t changed, br.GetU32());
  rec.changed = static_cast<uint8_t>(changed);
  GLY_ASSIGN_OR_RETURN(uint32_t n, br.GetU32());
  rec.adjacency.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    GLY_ASSIGN_OR_RETURN(uint32_t v, br.GetU32());
    rec.adjacency.push_back(v);
  }
  return rec;
}

std::string EncodeMessage(int64_t payload, double aux = 0.0) {
  std::string out;
  out.push_back(kMessageTag);
  ValueWriter w(&out);
  w.PutI64(payload);
  w.PutDouble(aux);
  return out;
}

struct Message {
  int64_t payload = 0;
  double aux = 0.0;
};

Result<Message> DecodeMessage(const std::string& value) {
  if (value.empty() || value[0] != kMessageTag) {
    return Status::InvalidArgument("not a message record");
  }
  std::string body = value.substr(1);
  ValueReader br(body);
  Message m;
  GLY_ASSIGN_OR_RETURN(m.payload, br.GetI64());
  GLY_ASSIGN_OR_RETURN(m.aux, br.GetDouble());
  return m;
}

bool IsGraphValue(const std::string& v) {
  return !v.empty() && v[0] == kGraphTag;
}

// ------------------------------------------------------------- driver util

// Writes initial graph state split across `parts` record files.
// `propagation_adjacency` folds in-neighbors into the record for directed
// graphs (needed by CONN's undirected connectivity semantics).
Result<std::vector<std::string>> WriteInitialState(
    const Graph& graph, const PlatformConfig& config,
    const std::function<GraphRecord(VertexId)>& init, bool union_adjacency) {
  const uint32_t parts = std::max(1u, config.job.num_mappers);
  std::vector<std::string> paths;
  std::vector<RecordFileWriter> writers;
  for (uint32_t p = 0; p < parts; ++p) {
    std::string path =
        config.work_dir + StringPrintf("/state-init/part-%05u", p);
    fs::create_directories(fs::path(path).parent_path());
    GLY_ASSIGN_OR_RETURN(RecordFileWriter w, RecordFileWriter::Open(path));
    writers.push_back(std::move(w));
    paths.push_back(path);
  }
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    GraphRecord rec = init(v);
    auto out_nbrs = graph.OutNeighbors(v);
    rec.adjacency.assign(out_nbrs.begin(), out_nbrs.end());
    if (union_adjacency && !graph.undirected()) {
      auto in_nbrs = graph.InNeighbors(v);
      rec.adjacency.insert(rec.adjacency.end(), in_nbrs.begin(),
                           in_nbrs.end());
      std::sort(rec.adjacency.begin(), rec.adjacency.end());
      rec.adjacency.erase(
          std::unique(rec.adjacency.begin(), rec.adjacency.end()),
          rec.adjacency.end());
    }
    GLY_RETURN_NOT_OK(writers[v % parts].Append(v, EncodeGraphRecord(rec)));
  }
  for (auto& w : writers) {
    GLY_RETURN_NOT_OK(w.Close());
  }
  return paths;
}

// Reads final state part files into a per-vertex state vector.
Result<std::vector<int64_t>> ReadFinalState(
    const std::vector<std::string>& paths, VertexId num_vertices) {
  std::vector<int64_t> values(num_vertices, 0);
  for (const std::string& path : paths) {
    GLY_ASSIGN_OR_RETURN(std::vector<Record> records, ReadAllRecords(path));
    for (const Record& r : records) {
      if (!IsGraphValue(r.value)) continue;
      GLY_ASSIGN_OR_RETURN(GraphRecord rec, DecodeGraphRecord(r.value));
      if (r.key < num_vertices) values[r.key] = rec.state;
    }
  }
  return values;
}

void AccumulateStats(const JobStats& job, ChainStats* chain) {
  ++chain->jobs_run;
  chain->total_spill_bytes += job.spill_bytes;
  chain->total_shuffle_bytes += job.shuffle_bytes;
  chain->total_output_bytes += job.output_bytes;
  chain->total_input_records += job.input_records;
  if (job.map_stage_recovered) ++chain->map_stages_recovered;
}

// ------------------------------------------------------- BFS mapper/reducer

// Map: pass the graph record through; vertices discovered in the previous
// iteration (state == iteration-1) send dist+1 to neighbors.
class BfsMapper : public Mapper {
 public:
  explicit BfsMapper(int64_t frontier_level) : frontier_(frontier_level) {}

  void Map(const Record& input, Emitter* out, Counters* counters) override {
    out->Emit(input.key, input.value);
    if (!IsGraphValue(input.value)) return;
    auto rec = DecodeGraphRecord(input.value);
    if (!rec.ok()) return;
    if (rec->state == frontier_) {
      for (VertexId w : rec->adjacency) {
        out->Emit(w, EncodeMessage(rec->state + 1));
        counters->Increment("traversed");
      }
    }
  }

 private:
  int64_t frontier_;
};

class BfsReducer : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters* counters) override {
    GraphRecord rec;
    bool have_graph = false;
    int64_t best = kUnreachable;
    for (const std::string& v : values) {
      if (IsGraphValue(v)) {
        auto g = DecodeGraphRecord(v);
        if (g.ok()) {
          rec = std::move(g).ValueOrDie();
          have_graph = true;
        }
      } else {
        auto m = DecodeMessage(v);
        if (m.ok()) best = std::min(best, m->payload);
      }
    }
    if (!have_graph) return;  // message to a vertex with no record
    if (best < rec.state) {
      rec.state = best;
      counters->Increment("updated");
    }
    out->Emit(key, EncodeGraphRecord(rec));
  }
};

// A min-combiner for BFS/CONN messages: keeps the graph record and the
// minimum message payload.
class MinMessageCombiner : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    int64_t best = kUnreachable;
    bool have_message = false;
    for (const std::string& v : values) {
      if (IsGraphValue(v)) {
        out->Emit(key, v);
      } else {
        auto m = DecodeMessage(v);
        if (m.ok()) {
          best = std::min(best, m->payload);
          have_message = true;
        }
      }
    }
    if (have_message) out->Emit(key, EncodeMessage(best));
  }
};

// ------------------------------------------------------ CONN mapper/reducer

class ConnMapper : public Mapper {
 public:
  void Map(const Record& input, Emitter* out, Counters* counters) override {
    out->Emit(input.key, input.value);
    if (!IsGraphValue(input.value)) return;
    auto rec = DecodeGraphRecord(input.value);
    if (!rec.ok()) return;
    if (rec->changed) {
      for (VertexId w : rec->adjacency) {
        out->Emit(w, EncodeMessage(rec->state));
        counters->Increment("traversed");
      }
    }
  }
};

class ConnReducer : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters* counters) override {
    GraphRecord rec;
    bool have_graph = false;
    int64_t best = std::numeric_limits<int64_t>::max();
    for (const std::string& v : values) {
      if (IsGraphValue(v)) {
        auto g = DecodeGraphRecord(v);
        if (g.ok()) {
          rec = std::move(g).ValueOrDie();
          have_graph = true;
        }
      } else {
        auto m = DecodeMessage(v);
        if (m.ok()) best = std::min(best, m->payload);
      }
    }
    if (!have_graph) return;
    if (best < rec.state) {
      rec.state = best;
      rec.changed = 1;
      counters->Increment("updated");
    } else {
      rec.changed = 0;
    }
    out->Emit(key, EncodeGraphRecord(rec));
  }
};

// -------------------------------------------------------- CD mapper/reducer

class CdMapper : public Mapper {
 public:
  void Map(const Record& input, Emitter* out, Counters* counters) override {
    out->Emit(input.key, input.value);
    if (!IsGraphValue(input.value)) return;
    auto rec = DecodeGraphRecord(input.value);
    if (!rec.ok()) return;
    for (VertexId w : rec->adjacency) {
      out->Emit(w, EncodeMessage(rec->state, rec->aux));
      counters->Increment("traversed");
    }
  }
};

class CdReducer : public Reducer {
 public:
  explicit CdReducer(double hop_attenuation) : hop_(hop_attenuation) {}

  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    GraphRecord rec;
    bool have_graph = false;
    std::vector<LabelScore> incoming;
    for (const std::string& v : values) {
      if (IsGraphValue(v)) {
        auto g = DecodeGraphRecord(v);
        if (g.ok()) {
          rec = std::move(g).ValueOrDie();
          have_graph = true;
        }
      } else {
        auto m = DecodeMessage(v);
        if (m.ok()) incoming.push_back(LabelScore{m->payload, m->aux});
      }
    }
    if (!have_graph) return;
    if (!incoming.empty()) {
      LabelScore adopted = CdAdoptLabel(incoming, hop_);
      rec.state = adopted.label;
      rec.aux = adopted.score;
    }
    out->Emit(key, EncodeGraphRecord(rec));
  }

 private:
  double hop_;
};

// -------------------------------------------------------- PR mapper/reducer
//
// Rank rides in the graph record's aux field; messages carry
// rank/out_degree contributions.

class PrMapper : public Mapper {
 public:
  void Map(const Record& input, Emitter* out, Counters* counters) override {
    out->Emit(input.key, input.value);
    if (!IsGraphValue(input.value)) return;
    auto rec = DecodeGraphRecord(input.value);
    if (!rec.ok() || rec->adjacency.empty()) return;
    double contribution =
        rec->aux / static_cast<double>(rec->adjacency.size());
    for (VertexId w : rec->adjacency) {
      out->Emit(w, EncodeMessage(0, contribution));
      counters->Increment("traversed");
    }
  }
};

class PrReducer : public Reducer {
 public:
  PrReducer(double base, double damping) : base_(base), damping_(damping) {}

  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    GraphRecord rec;
    bool have_graph = false;
    double sum = 0.0;
    for (const std::string& v : values) {
      if (IsGraphValue(v)) {
        auto g = DecodeGraphRecord(v);
        if (g.ok()) {
          rec = std::move(g).ValueOrDie();
          have_graph = true;
        }
      } else {
        auto m = DecodeMessage(v);
        if (m.ok()) sum += m->aux;
      }
    }
    if (!have_graph) return;
    rec.aux = base_ + damping_ * sum;
    out->Emit(key, EncodeGraphRecord(rec));
  }

 private:
  double base_;
  double damping_;
};

// Sum-combiner for PR contributions.
class PrCombiner : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    double sum = 0.0;
    bool have_message = false;
    for (const std::string& v : values) {
      if (IsGraphValue(v)) {
        out->Emit(key, v);
      } else {
        auto m = DecodeMessage(v);
        if (m.ok()) {
          sum += m->aux;
          have_message = true;
        }
      }
    }
    if (have_message) out->Emit(key, EncodeMessage(0, sum));
  }
};

// ----------------------------------------------------- STATS mapper/reducer
//
// Job 1: exchange adjacency lists and compute the local clustering
// coefficient per vertex (stored in aux). Neighbor lists are encoded as a
// 'M' message whose payload abuses (i64 = count) followed by raw ids in a
// separate encoding — for simplicity the list rides in the value after the
// standard message header.

std::string EncodeListMessage(const std::vector<VertexId>& list) {
  std::string out;
  out.push_back(kMessageTag);
  ValueWriter w(&out);
  w.PutI64(static_cast<int64_t>(list.size()));
  w.PutDouble(0.0);
  for (VertexId v : list) w.PutU32(v);
  return out;
}

Result<std::vector<VertexId>> DecodeListMessage(const std::string& value) {
  std::string body = value.substr(1);
  ValueReader br(body);
  GLY_ASSIGN_OR_RETURN(int64_t n, br.GetI64());
  GLY_ASSIGN_OR_RETURN(double unused, br.GetDouble());
  (void)unused;
  std::vector<VertexId> list;
  list.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    GLY_ASSIGN_OR_RETURN(uint32_t v, br.GetU32());
    list.push_back(v);
  }
  return list;
}

class LccMapper : public Mapper {
 public:
  void Map(const Record& input, Emitter* out, Counters* counters) override {
    out->Emit(input.key, input.value);
    if (!IsGraphValue(input.value)) return;
    auto rec = DecodeGraphRecord(input.value);
    if (!rec.ok()) return;
    if (rec->adjacency.size() >= 2) {
      std::string msg = EncodeListMessage(rec->adjacency);
      for (VertexId w : rec->adjacency) {
        out->Emit(w, msg);
        counters->Increment("traversed");
      }
    }
  }
};

class LccReducer : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    GraphRecord rec;
    bool have_graph = false;
    std::vector<std::vector<VertexId>> lists;
    for (const std::string& v : values) {
      if (IsGraphValue(v)) {
        auto g = DecodeGraphRecord(v);
        if (g.ok()) {
          rec = std::move(g).ValueOrDie();
          have_graph = true;
        }
      } else {
        auto l = DecodeListMessage(v);
        if (l.ok()) lists.push_back(std::move(l).ValueOrDie());
      }
    }
    if (!have_graph) return;
    uint64_t deg = rec.adjacency.size();
    if (deg >= 2) {
      uint64_t links = 0;
      for (const auto& their : lists) {
        size_t a = 0;
        size_t b = 0;
        while (a < their.size() && b < rec.adjacency.size()) {
          if (their[a] < rec.adjacency[b]) {
            ++a;
          } else if (their[a] > rec.adjacency[b]) {
            ++b;
          } else {
            ++links;
            ++a;
            ++b;
          }
        }
      }
      rec.aux = static_cast<double>(links) /
                (static_cast<double>(deg) * static_cast<double>(deg - 1));
    }
    out->Emit(key, EncodeGraphRecord(rec));
  }
};

// Job 2: aggregate the mean LCC under a single key.
class LccAggregateMapper : public Mapper {
 public:
  void Map(const Record& input, Emitter* out, Counters*) override {
    if (!IsGraphValue(input.value)) return;
    auto rec = DecodeGraphRecord(input.value);
    if (!rec.ok()) return;
    out->Emit(0, EncodeMessage(1, rec->aux));
  }
};

class LccAggregateReducer : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    double sum = 0.0;
    int64_t count = 0;
    for (const std::string& v : values) {
      auto m = DecodeMessage(v);
      if (m.ok()) {
        sum += m->aux;
        count += m->payload;
      }
    }
    std::string encoded = EncodeMessage(count, sum);
    out->Emit(key, encoded);
  }
};

// ------------------------------------------------------- EVO mapper/reducer
//
// Fire records (key = fire index); the graph rides in the distributed
// cache (a binary edge file every mapper loads once).

class EvoMapper : public Mapper {
 public:
  EvoMapper(std::shared_ptr<const Graph> graph, EvoParams params)
      : graph_(std::move(graph)), params_(params) {}

  void Map(const Record& input, Emitter* out, Counters* counters) override {
    uint32_t fire = static_cast<uint32_t>(input.key);
    VertexId ambassador = ForestFireAmbassador(*graph_, params_, fire);
    std::vector<VertexId> burned =
        ForestFireBurn(*graph_, ambassador, params_, fire);
    VertexId new_vertex = graph_->num_vertices() + fire;
    for (VertexId b : burned) {
      out->Emit(new_vertex, EncodeMessage(static_cast<int64_t>(b)));
      counters->Increment("traversed");
    }
  }

 private:
  std::shared_ptr<const Graph> graph_;
  EvoParams params_;
};

class EvoReducer : public Reducer {
 public:
  void Reduce(uint64_t key, const std::vector<std::string>& values,
              Emitter* out, Counters*) override {
    for (const std::string& v : values) out->Emit(key, v);
  }
};

// ----------------------------------------------------------------- drivers

struct Driver {
  const PlatformConfig& config;
  const Graph& graph;
  ThreadPool pool;
  Counters counters;
  ChainStats chain;
  uint64_t traversed_total = 0;

  explicit Driver(const PlatformConfig& cfg, const Graph& g)
      : config(cfg), graph(g), pool(std::max(1u, cfg.job.num_mappers)) {}

  Result<std::vector<std::string>> RunJob(
      const std::vector<std::string>& inputs, const std::string& out_dir,
      MapperFactory mf, ReducerFactory rf, ReducerFactory cf = nullptr) {
    // Chained iterative algorithms stop between jobs: the job itself also
    // polls between splits/groups, so a cancelled chain unwinds within one
    // task's worth of work.
    GLY_RETURN_NOT_OK(CheckCancel(config.job.cancel));
    Job job(config.job, std::move(mf), std::move(rf), std::move(cf));
    JobStats stats;
    Stopwatch watch;
    GLY_ASSIGN_OR_RETURN(
        auto outputs, job.Run(inputs, out_dir, &pool, &counters, &stats));
    chain.total_seconds += watch.ElapsedSeconds();
    AccumulateStats(stats, &chain);
    if (config.job.cancel != nullptr) config.job.cancel->Heartbeat();
    return outputs;
  }
};

Result<AlgorithmOutput> RunBfsChain(Driver& driver, const BfsParams& params) {
  const Graph& graph = driver.graph;
  GLY_ASSIGN_OR_RETURN(
      std::vector<std::string> state,
      WriteInitialState(
          graph, driver.config,
          [&params](VertexId v) {
            GraphRecord rec;
            rec.state = (v == params.source) ? 0 : kUnreachable;
            return rec;
          },
          /*union_adjacency=*/false));

  for (uint32_t iter = 1; iter <= driver.config.max_iterations; ++iter) {
    driver.traversed_total += driver.counters.Get("traversed");
    driver.counters.Reset();
    int64_t frontier = static_cast<int64_t>(iter) - 1;
    GLY_ASSIGN_OR_RETURN(
        state,
        driver.RunJob(
            state, driver.config.work_dir + "/iter-" + std::to_string(iter),
            [frontier] { return std::make_unique<BfsMapper>(frontier); },
            [] { return std::make_unique<BfsReducer>(); },
            [] { return std::make_unique<MinMessageCombiner>(); }));
    if (driver.counters.Get("updated") == 0) break;
  }

  AlgorithmOutput out;
  GLY_ASSIGN_OR_RETURN(out.vertex_values,
                       ReadFinalState(state, graph.num_vertices()));
  return out;
}

Result<AlgorithmOutput> RunConnChain(Driver& driver) {
  const Graph& graph = driver.graph;
  GLY_ASSIGN_OR_RETURN(
      std::vector<std::string> state,
      WriteInitialState(
          graph, driver.config,
          [](VertexId v) {
            GraphRecord rec;
            rec.state = static_cast<int64_t>(v);
            rec.changed = 1;
            return rec;
          },
          /*union_adjacency=*/true));

  for (uint32_t iter = 1; iter <= driver.config.max_iterations; ++iter) {
    driver.traversed_total += driver.counters.Get("traversed");
    driver.counters.Reset();
    GLY_ASSIGN_OR_RETURN(
        state,
        driver.RunJob(
            state, driver.config.work_dir + "/iter-" + std::to_string(iter),
            [] { return std::make_unique<ConnMapper>(); },
            [] { return std::make_unique<ConnReducer>(); },
            [] { return std::make_unique<MinMessageCombiner>(); }));
    if (driver.counters.Get("updated") == 0) break;
  }

  AlgorithmOutput out;
  GLY_ASSIGN_OR_RETURN(out.vertex_values,
                       ReadFinalState(state, graph.num_vertices()));
  return out;
}

Result<AlgorithmOutput> RunCdChain(Driver& driver, const CdParams& params) {
  const Graph& graph = driver.graph;
  GLY_ASSIGN_OR_RETURN(
      std::vector<std::string> state,
      WriteInitialState(
          graph, driver.config,
          [](VertexId v) {
            GraphRecord rec;
            rec.state = static_cast<int64_t>(v);
            rec.aux = 1.0;
            return rec;
          },
          /*union_adjacency=*/false));

  for (uint32_t iter = 1; iter <= params.max_iterations; ++iter) {
    double hop = params.hop_attenuation;
    GLY_ASSIGN_OR_RETURN(
        state,
        driver.RunJob(
            state, driver.config.work_dir + "/iter-" + std::to_string(iter),
            [] { return std::make_unique<CdMapper>(); },
            [hop] { return std::make_unique<CdReducer>(hop); }));
  }

  AlgorithmOutput out;
  GLY_ASSIGN_OR_RETURN(out.vertex_values,
                       ReadFinalState(state, graph.num_vertices()));
  return out;
}

Result<AlgorithmOutput> RunPrChain(Driver& driver, const PrParams& params) {
  const Graph& graph = driver.graph;
  const double n = static_cast<double>(graph.num_vertices());
  GLY_ASSIGN_OR_RETURN(
      std::vector<std::string> state,
      WriteInitialState(
          graph, driver.config,
          [n](VertexId) {
            GraphRecord rec;
            rec.aux = 1.0 / n;
            return rec;
          },
          /*union_adjacency=*/false));

  const double base = (1.0 - params.damping) / n;
  const double damping = params.damping;
  for (uint32_t iter = 1; iter <= params.iterations; ++iter) {
    GLY_ASSIGN_OR_RETURN(
        state,
        driver.RunJob(
            state, driver.config.work_dir + "/iter-" + std::to_string(iter),
            [] { return std::make_unique<PrMapper>(); },
            [base, damping] {
              return std::make_unique<PrReducer>(base, damping);
            },
            [] { return std::make_unique<PrCombiner>(); }));
  }

  AlgorithmOutput out;
  out.vertex_scores.assign(graph.num_vertices(), 0.0);
  for (const std::string& path : state) {
    GLY_ASSIGN_OR_RETURN(std::vector<Record> records, ReadAllRecords(path));
    for (const Record& r : records) {
      if (!IsGraphValue(r.value)) continue;
      GLY_ASSIGN_OR_RETURN(GraphRecord rec, DecodeGraphRecord(r.value));
      if (r.key < graph.num_vertices()) out.vertex_scores[r.key] = rec.aux;
    }
  }
  return out;
}

Result<AlgorithmOutput> RunStatsChain(Driver& driver) {
  const Graph& graph = driver.graph;
  GLY_ASSIGN_OR_RETURN(std::vector<std::string> state,
                       WriteInitialState(
                           graph, driver.config,
                           [](VertexId) { return GraphRecord{}; },
                           /*union_adjacency=*/false));

  GLY_ASSIGN_OR_RETURN(
      state, driver.RunJob(state, driver.config.work_dir + "/lcc",
                           [] { return std::make_unique<LccMapper>(); },
                           [] { return std::make_unique<LccReducer>(); }));
  GLY_ASSIGN_OR_RETURN(
      auto agg,
      driver.RunJob(state, driver.config.work_dir + "/lcc-agg",
                    [] { return std::make_unique<LccAggregateMapper>(); },
                    [] { return std::make_unique<LccAggregateReducer>(); },
                    [] { return std::make_unique<LccAggregateReducer>(); }));

  AlgorithmOutput out;
  out.stats.num_vertices = graph.num_vertices();
  out.stats.num_edges = graph.num_edges();
  double sum = 0.0;
  int64_t count = 0;
  for (const std::string& path : agg) {
    GLY_ASSIGN_OR_RETURN(std::vector<Record> records, ReadAllRecords(path));
    for (const Record& r : records) {
      auto m = DecodeMessage(r.value);
      if (m.ok()) {
        sum += m->aux;
        count += m->payload;
      }
    }
  }
  out.stats.mean_local_clustering =
      count > 0 ? sum / static_cast<double>(count) : 0.0;
  return out;
}

Result<AlgorithmOutput> RunEvoChain(Driver& driver, const EvoParams& params) {
  const Graph& graph = driver.graph;
  // Fire-seed input records.
  std::vector<std::string> inputs;
  {
    const uint32_t parts = std::max(1u, driver.config.job.num_mappers);
    std::vector<RecordFileWriter> writers;
    for (uint32_t p = 0; p < parts; ++p) {
      std::string path =
          driver.config.work_dir + StringPrintf("/fires/part-%05u", p);
      fs::create_directories(fs::path(path).parent_path());
      GLY_ASSIGN_OR_RETURN(RecordFileWriter w, RecordFileWriter::Open(path));
      writers.push_back(std::move(w));
      inputs.push_back(path);
    }
    for (uint32_t f = 0; f < params.num_new_vertices; ++f) {
      GLY_RETURN_NOT_OK(writers[f % parts].Append(f, std::string()));
    }
    for (auto& w : writers) {
      GLY_RETURN_NOT_OK(w.Close());
    }
  }

  // Distributed cache: write the graph once, each mapper instance loads it.
  // (A single shared immutable instance stands in for the per-process copy
  // every Hadoop mapper would deserialize.)
  std::string cache_path = driver.config.work_dir + "/cache-graph.bin";
  GLY_RETURN_NOT_OK(WriteEdgeListBinary(graph.ToEdgeList(), cache_path));
  GLY_ASSIGN_OR_RETURN(EdgeList cached_edges, ReadEdgeListBinary(cache_path));
  Result<Graph> cached = graph.undirected()
                             ? GraphBuilder::Undirected(cached_edges)
                             : GraphBuilder::Directed(cached_edges);
  GLY_RETURN_NOT_OK(cached.status());
  auto shared_graph = std::make_shared<const Graph>(std::move(cached).ValueOrDie());

  EvoParams p = params;
  GLY_ASSIGN_OR_RETURN(
      auto outputs,
      driver.RunJob(inputs, driver.config.work_dir + "/evo-out",
                    [shared_graph, p] {
                      return std::make_unique<EvoMapper>(shared_graph, p);
                    },
                    [] { return std::make_unique<EvoReducer>(); }));

  AlgorithmOutput out;
  for (const std::string& path : outputs) {
    GLY_ASSIGN_OR_RETURN(std::vector<Record> records, ReadAllRecords(path));
    for (const Record& r : records) {
      auto m = DecodeMessage(r.value);
      if (m.ok()) {
        out.new_edges.Add(static_cast<VertexId>(r.key),
                          static_cast<VertexId>(m->payload));
      }
    }
  }
  out.new_edges.EnsureVertices(graph.num_vertices() + params.num_new_vertices);
  return out;
}

}  // namespace

Result<AlgorithmOutput> RunAlgorithm(const PlatformConfig& config,
                                     const Graph& graph, AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     ChainStats* stats_out) {
  if (config.work_dir.empty()) {
    return Status::InvalidArgument("PlatformConfig.work_dir is required");
  }
  std::error_code ec;
  fs::create_directories(config.work_dir, ec);

  // Install the harness cancellation token (if any) into the job config so
  // every chained job, map task, and reduce task observes it.
  PlatformConfig run_config = config;
  if (params.cancel != nullptr && run_config.job.cancel == nullptr) {
    run_config.job.cancel = params.cancel;
  }
  Driver driver(run_config, graph);
  Result<AlgorithmOutput> result = Status::Internal("unreached");
  switch (kind) {
    case AlgorithmKind::kBfs:
      result = RunBfsChain(driver, params.bfs);
      break;
    case AlgorithmKind::kConn:
      result = RunConnChain(driver);
      break;
    case AlgorithmKind::kCd:
      result = RunCdChain(driver, params.cd);
      break;
    case AlgorithmKind::kStats:
      result = RunStatsChain(driver);
      break;
    case AlgorithmKind::kEvo:
      result = RunEvoChain(driver, params.evo);
      break;
    case AlgorithmKind::kPr:
      result = RunPrChain(driver, params.pr);
      break;
  }
  if (!result.ok()) return result.status();
  AlgorithmOutput out = std::move(result).ValueOrDie();
  out.traversed_edges =
      driver.traversed_total + driver.counters.Get("traversed");
  if (out.traversed_edges == 0) {
    out.traversed_edges = graph.num_adjacency_entries();
  }
  if (stats_out != nullptr) *stats_out = driver.chain;

  // Remove iteration state (keeps disk usage bounded across bench sweeps).
  fs::remove_all(config.work_dir, ec);
  return out;
}

}  // namespace gly::mapreduce
