// MapReduce record model and binary serialization.
//
// Records are (uint64 key, opaque byte-string value) — the same shape
// Hadoop jobs use after serialization. Record files are the on-disk
// interchange between job phases and between chained jobs:
//   [key: u64 LE][len: u32 LE][len bytes]*

#pragma once

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/result.h"

namespace gly::mapreduce {

/// One key-value record.
struct Record {
  uint64_t key = 0;
  std::string value;

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Appends primitive values to a byte-string (little-endian).
class ValueWriter {
 public:
  explicit ValueWriter(std::string* out) : out_(out) {}

  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutDouble(double v) { PutRaw(&v, sizeof(v)); }
  void PutBytes(const void* data, size_t len) {
    PutU32(static_cast<uint32_t>(len));
    PutRaw(data, len);
  }

 private:
  void PutRaw(const void* data, size_t len) {
    out_->append(reinterpret_cast<const char*>(data), len);
  }
  std::string* out_;
};

/// Reads primitive values back out of a byte-string.
class ValueReader {
 public:
  explicit ValueReader(const std::string& data) : data_(data) {}

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

  Result<uint32_t> GetU32() { return Get<uint32_t>(); }
  Result<uint64_t> GetU64() { return Get<uint64_t>(); }
  Result<int64_t> GetI64() { return Get<int64_t>(); }
  Result<double> GetDouble() { return Get<double>(); }

  /// Reads a length-prefixed byte span (points into the backing string).
  Result<std::string_view> GetBytes() {
    auto len = GetU32();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) {
      return Status::InvalidArgument("value truncated");
    }
    std::string_view out(data_.data() + pos_, *len);
    pos_ += *len;
    return out;
  }

 private:
  template <typename T>
  Result<T> Get() {
    if (pos_ + sizeof(T) > data_.size()) {
      return Status::InvalidArgument("value truncated");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::string& data_;
  size_t pos_ = 0;
};

/// Sequential writer of record files.
class RecordFileWriter {
 public:
  /// Opens `path` for writing (truncates).
  static Result<RecordFileWriter> Open(const std::string& path);

  Status Append(const Record& record);
  Status Append(uint64_t key, const std::string& value);

  /// Flushes and closes. Must be called before the file is read.
  Status Close();

  uint64_t bytes_written() const { return bytes_; }
  uint64_t records_written() const { return records_; }

 private:
  explicit RecordFileWriter(std::ofstream out, std::string path)
      : out_(std::move(out)), path_(std::move(path)) {}
  std::ofstream out_;
  std::string path_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
};

/// Sequential reader of record files.
class RecordFileReader {
 public:
  static Result<RecordFileReader> Open(const std::string& path);

  /// Reads the next record; returns false at EOF.
  Result<bool> Next(Record* out);

  uint64_t bytes_read() const { return bytes_; }

 private:
  explicit RecordFileReader(std::ifstream in, std::string path)
      : in_(std::move(in)), path_(std::move(path)) {}
  std::ifstream in_;
  std::string path_;
  uint64_t bytes_ = 0;
};

/// Reads an entire record file into memory (tests, small outputs).
Result<std::vector<Record>> ReadAllRecords(const std::string& path);

/// Writes `records` to `path`.
Status WriteAllRecords(const std::vector<Record>& records,
                       const std::string& path);

}  // namespace gly::mapreduce
