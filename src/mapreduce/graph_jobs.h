// The five Graphalytics algorithms as chained MapReduce jobs.
//
// Each iterative algorithm follows the canonical Hadoop pattern the paper's
// MapReduce driver uses: the whole graph state (vertex state + adjacency)
// is a record file; every iteration is one MapReduce job that
//   map:    re-emits each vertex's graph record and emits messages to
//           neighbors,
//   reduce: joins messages with the graph record and produces the next
//           state file.
// The complete graph is therefore read from and written back to disk every
// iteration — the structural reason MapReduce trails the in-memory
// platforms by 1-2 orders of magnitude in Figure 4 while never running out
// of memory ("MapReduce does not need to keep graph data in memory during
// processing and thus does not crash even when processing the largest
// workload").
//
// EVO uses the Hadoop distributed-cache idiom: the immutable graph is
// shipped to every mapper as a side file, fires are the mapped records.

#pragma once

#include <string>

#include "mapreduce/job.h"
#include "ref/algorithms.h"

namespace gly::mapreduce {

/// MapReduce platform configuration.
struct PlatformConfig {
  JobConfig job;          ///< mappers/reducers/sort buffer/scratch
  std::string work_dir;   ///< iteration state directory (required)
  uint32_t max_iterations = 1000;  ///< driver safety valve
};

/// Aggregate statistics across a whole algorithm run (all chained jobs).
struct ChainStats {
  uint32_t jobs_run = 0;
  uint64_t total_spill_bytes = 0;
  uint64_t total_shuffle_bytes = 0;
  uint64_t total_output_bytes = 0;
  uint64_t total_input_records = 0;
  double total_seconds = 0.0;
  /// Jobs whose map phase was skipped by restoring a spill manifest (see
  /// JobConfig::checkpoint_map_stage).
  uint32_t map_stages_recovered = 0;
};

/// Runs `kind` on `graph`. Output semantics match ref/algorithms.h.
Result<AlgorithmOutput> RunAlgorithm(const PlatformConfig& config,
                                     const Graph& graph, AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     ChainStats* stats_out = nullptr);

}  // namespace gly::mapreduce
