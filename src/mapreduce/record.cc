#include "mapreduce/record.h"

#include "common/macros.h"

namespace gly::mapreduce {

Result<RecordFileWriter> RecordFileWriter::Open(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for write: " + path);
  return RecordFileWriter(std::move(out), path);
}

Status RecordFileWriter::Append(const Record& record) {
  return Append(record.key, record.value);
}

Status RecordFileWriter::Append(uint64_t key, const std::string& value) {
  uint32_t len = static_cast<uint32_t>(value.size());
  out_.write(reinterpret_cast<const char*>(&key), sizeof(key));
  out_.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out_.write(value.data(), len);
  if (!out_) return Status::IOError("write failed: " + path_);
  bytes_ += sizeof(key) + sizeof(len) + len;
  ++records_;
  return Status::OK();
}

Status RecordFileWriter::Close() {
  out_.flush();
  out_.close();
  if (out_.fail()) return Status::IOError("close failed: " + path_);
  return Status::OK();
}

Result<RecordFileReader> RecordFileReader::Open(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  return RecordFileReader(std::move(in), path);
}

Result<bool> RecordFileReader::Next(Record* out) {
  uint64_t key;
  in_.read(reinterpret_cast<char*>(&key), sizeof(key));
  if (in_.eof() && in_.gcount() == 0) return false;
  if (!in_ || in_.gcount() != sizeof(key)) {
    return Status::IOError("truncated record key in " + path_);
  }
  uint32_t len;
  in_.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!in_ || in_.gcount() != sizeof(len)) {
    return Status::IOError("truncated record length in " + path_);
  }
  out->key = key;
  out->value.resize(len);
  if (len > 0) {
    in_.read(out->value.data(), len);
    if (!in_ || in_.gcount() != static_cast<std::streamsize>(len)) {
      return Status::IOError("truncated record value in " + path_);
    }
  }
  bytes_ += sizeof(key) + sizeof(len) + len;
  return true;
}

Result<std::vector<Record>> ReadAllRecords(const std::string& path) {
  GLY_ASSIGN_OR_RETURN(RecordFileReader reader, RecordFileReader::Open(path));
  std::vector<Record> records;
  Record r;
  for (;;) {
    GLY_ASSIGN_OR_RETURN(bool more, reader.Next(&r));
    if (!more) break;
    records.push_back(r);
  }
  return records;
}

Status WriteAllRecords(const std::vector<Record>& records,
                       const std::string& path) {
  GLY_ASSIGN_OR_RETURN(RecordFileWriter writer, RecordFileWriter::Open(path));
  for (const Record& r : records) {
    GLY_RETURN_NOT_OK(writer.Append(r));
  }
  return writer.Close();
}

}  // namespace gly::mapreduce
