#include "mapreduce/job.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <queue>
#include <thread>

#include "common/checkpoint.h"
#include "common/crc32.h"
#include "common/fault_injection.h"
#include "common/metrics.h"
#include "common/perf_counters.h"
#include "common/trace.h"
#include "common/logging.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace gly::mapreduce {

namespace fs = std::filesystem;

void Counters::Increment(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[name] += delta;
}

uint64_t Counters::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t> Counters::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return values_;
}

void Counters::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  values_.clear();
}

namespace {

// Collects map output for one (mapper, reducer) pair; sorts and spills runs.
class SpillBuffer {
 public:
  SpillBuffer(std::string path_prefix, uint64_t limit, Reducer* combiner,
              Counters* counters)
      : path_prefix_(std::move(path_prefix)),
        limit_(limit),
        combiner_(combiner),
        counters_(counters) {}

  Status Add(uint64_t key, const std::string& value, JobStats* stats) {
    bytes_ += sizeof(uint64_t) + sizeof(uint32_t) + value.size();
    records_.push_back(Record{key, value});
    if (bytes_ >= limit_) return Spill(stats);
    return Status::OK();
  }

  Status Spill(JobStats* stats) {
    if (records_.empty()) return Status::OK();
    GLY_FAULT_POINT("mapreduce.spill.write");
    std::stable_sort(records_.begin(), records_.end(),
                     [](const Record& a, const Record& b) {
                       return a.key < b.key;
                     });
    if (combiner_ != nullptr) RunCombiner(stats);
    std::string path = path_prefix_ + "." + std::to_string(spill_count_++);
    GLY_ASSIGN_OR_RETURN(RecordFileWriter writer,
                         RecordFileWriter::Open(path));
    for (const Record& r : records_) {
      GLY_RETURN_NOT_OK(writer.Append(r));
    }
    GLY_RETURN_NOT_OK(writer.Close());
    if (stats != nullptr) {
      stats->spill_bytes += writer.bytes_written();
      ++stats->spill_files;
    }
    run_paths_.push_back(path);
    records_.clear();
    bytes_ = 0;
    return Status::OK();
  }

  const std::vector<std::string>& run_paths() const { return run_paths_; }

 private:
  // Folds sorted `records_` through the combiner, replacing each key group
  // with the combiner's output (map-side combine, as Hadoop does at spill).
  void RunCombiner(JobStats* stats);

  std::string path_prefix_;
  uint64_t limit_;
  Reducer* combiner_;
  Counters* counters_;
  uint64_t bytes_ = 0;
  uint32_t spill_count_ = 0;
  std::vector<Record> records_;
  std::vector<std::string> run_paths_;
};

// Emitter routing to per-reducer spill buffers by key hash.
class PartitionedEmitter : public Emitter {
 public:
  PartitionedEmitter(std::vector<SpillBuffer>* buffers, JobStats* stats,
                     std::atomic<uint64_t>* emitted)
      : buffers_(buffers), stats_(stats), emitted_(emitted) {}

  void Emit(uint64_t key, const std::string& value) override {
    uint64_t h = (key + 1) * 0x9E3779B97F4A7C15ULL;
    size_t r = static_cast<size_t>((h >> 33) % buffers_->size());
    Status s = (*buffers_)[r].Add(key, value, stats_);
    if (!s.ok()) {
      // Spill failures surface when runs are collected; remember the first.
      if (error_.ok()) error_ = s;
    }
    emitted_->fetch_add(1, std::memory_order_relaxed);
  }

  const Status& error() const { return error_; }

 private:
  std::vector<SpillBuffer>* buffers_;
  JobStats* stats_;
  std::atomic<uint64_t>* emitted_;
  Status error_;
};

// Emitter that buffers records in memory (combiner / reducer output).
class VectorEmitter : public Emitter {
 public:
  void Emit(uint64_t key, const std::string& value) override {
    records_.push_back(Record{key, value});
  }
  std::vector<Record>& records() { return records_; }

 private:
  std::vector<Record> records_;
};

void SpillBuffer::RunCombiner(JobStats* stats) {
  VectorEmitter out;
  std::vector<Record> combined;
  size_t i = 0;
  while (i < records_.size()) {
    uint64_t key = records_[i].key;
    std::vector<std::string> group;
    while (i < records_.size() && records_[i].key == key) {
      group.push_back(std::move(records_[i].value));
      ++i;
    }
    combiner_->Reduce(key, group, &out, counters_);
  }
  // Combiner output for one key may be multiple records; re-sort to keep
  // the run file ordered.
  combined = std::move(out.records());
  std::stable_sort(combined.begin(), combined.end(),
                   [](const Record& a, const Record& b) {
                     return a.key < b.key;
                   });
  if (stats != nullptr) stats->combined_records += combined.size();
  records_ = std::move(combined);
}

// One source in the k-way merge of sorted run files.
struct MergeSource {
  std::unique_ptr<RecordFileReader> reader;
  Record current;
  bool done = false;
};

// ------------------------------------------- map-stage checkpoint manifest

constexpr char kMapManifestName[] = ".map-manifest.ckpt";

// Size + CRC of one input file (0/0 when unreadable).
void FileDigest(const std::string& path, uint64_t* size, uint32_t* crc) {
  *size = 0;
  *crc = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  char buf[64 << 10];
  uint32_t state = kCrc32cInit;
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    *size += static_cast<uint64_t>(in.gcount());
    state = Crc32cUpdate(state, buf, static_cast<size_t>(in.gcount()));
  }
  *crc = Crc32cFinalize(state);
}

// A manifest is only reusable by the *same* job: identical inputs (path
// AND content — state files are rewritten in place between runs, so paths
// alone would let a stale manifest masquerade as current) and identical
// partitioning. Anything else must invalidate it.
std::string ManifestFingerprint(const JobConfig& config,
                                const std::vector<std::string>& inputs) {
  std::string fp;
  CheckpointEncoder enc(&fp);
  enc.PutU32(std::max(1u, config.num_mappers));
  enc.PutU32(std::max(1u, config.num_reducers));
  enc.PutU64(config.sort_buffer_bytes);
  enc.PutU64(inputs.size());
  for (const std::string& p : inputs) {
    uint64_t size = 0;
    uint32_t crc = 0;
    FileDigest(p, &size, &crc);
    enc.PutString(p);
    enc.PutU64(size);
    enc.PutU32(crc);
  }
  return fp;
}

Status WriteMapManifest(const std::string& path, const std::string& fingerprint,
                        const std::vector<std::vector<std::string>>& runs,
                        const JobStats& stats) {
  CheckpointWriter writer;
  *writer.AddSection("fingerprint") = fingerprint;
  CheckpointEncoder run_enc(writer.AddSection("runs"));
  run_enc.PutU64(runs.size());
  for (const auto& slot : runs) {
    run_enc.PutU64(slot.size());
    for (const std::string& p : slot) run_enc.PutString(p);
  }
  CheckpointEncoder stat_enc(writer.AddSection("stats"));
  stat_enc.PutU64(stats.input_records);
  stat_enc.PutU64(stats.map_output_records);
  stat_enc.PutU64(stats.combined_records);
  stat_enc.PutU64(stats.spill_bytes);
  stat_enc.PutU32(stats.spill_files);
  stat_enc.PutDouble(stats.map_seconds);
  return writer.WriteTo(path);
}

// True when a valid same-job manifest was restored into `runs`/`stats` and
// every referenced run file still exists on disk.
bool TryRestoreMapManifest(const std::string& path,
                           const std::string& fingerprint,
                           size_t expected_slots,
                           std::vector<std::vector<std::string>>* runs,
                           JobStats* stats) {
  auto reader = CheckpointReader::Load(path);
  if (!reader.ok()) return false;
  auto fp = reader->Section("fingerprint");
  if (!fp.ok() || *fp != fingerprint) return false;

  auto runs_raw = reader->Section("runs");
  if (!runs_raw.ok()) return false;
  CheckpointDecoder run_dec(*runs_raw);
  uint64_t slots = 0;
  if (!run_dec.GetU64(&slots) || slots != expected_slots) return false;
  std::vector<std::vector<std::string>> restored(slots);
  for (uint64_t i = 0; i < slots; ++i) {
    uint64_t count = 0;
    if (!run_dec.GetU64(&count) || count > run_dec.remaining()) return false;
    restored[i].resize(count);
    for (uint64_t j = 0; j < count; ++j) {
      if (!run_dec.GetString(&restored[i][j])) return false;
    }
  }
  std::error_code ec;
  for (const auto& slot : restored) {
    for (const std::string& p : slot) {
      if (!fs::exists(p, ec) || ec) return false;
    }
  }

  auto stats_raw = reader->Section("stats");
  if (!stats_raw.ok()) return false;
  CheckpointDecoder stat_dec(*stats_raw);
  if (!stat_dec.GetU64(&stats->input_records) ||
      !stat_dec.GetU64(&stats->map_output_records) ||
      !stat_dec.GetU64(&stats->combined_records) ||
      !stat_dec.GetU64(&stats->spill_bytes) ||
      !stat_dec.GetU32(&stats->spill_files) ||
      !stat_dec.GetDouble(&stats->map_seconds)) {
    return false;
  }
  *runs = std::move(restored);
  return true;
}

}  // namespace

Job::Job(JobConfig config, MapperFactory mapper_factory,
         ReducerFactory reducer_factory, ReducerFactory combiner_factory)
    : config_(std::move(config)),
      mapper_factory_(std::move(mapper_factory)),
      reducer_factory_(std::move(reducer_factory)),
      combiner_factory_(std::move(combiner_factory)) {}

Result<std::vector<std::string>> Job::Run(
    const std::vector<std::string>& input_paths, const std::string& output_dir,
    ThreadPool* pool, Counters* counters, JobStats* stats_out) {
  if (config_.scratch_dir.empty()) {
    return Status::InvalidArgument("JobConfig.scratch_dir is required");
  }
  std::error_code ec;
  fs::create_directories(config_.scratch_dir, ec);
  fs::create_directories(output_dir, ec);

  JobStats stats;
  trace::TraceSpan job_span("mapreduce.job", "mapreduce");
  perf::SpanCounters job_counters(&job_span);
  metrics::AddCounter("mapreduce.jobs");
  GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
  const uint32_t mappers = std::max(1u, config_.num_mappers);
  const uint32_t reducers = std::max(1u, config_.num_reducers);

  // Simulated job submission + scheduling latency.
  if (config_.job_startup_s > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.job_startup_s));
  }

  // Map-stage checkpoint locations. Checkpointed spill runs live under the
  // output directory rather than the shared scratch, so chained jobs can't
  // clobber them and a re-run of this job finds them where the manifest
  // says.
  const std::string manifest_path =
      output_dir + "/" + kMapManifestName;
  const std::string spill_dir = config_.checkpoint_map_stage
                                    ? output_dir + "/.map-runs"
                                    : config_.scratch_dir;
  std::string fingerprint;
  if (config_.checkpoint_map_stage) {
    fs::create_directories(spill_dir, ec);
    fingerprint = ManifestFingerprint(config_, input_paths);
  }

  // ------------------------------------------------------------- map phase
  std::vector<std::vector<std::string>> mapper_runs(
      static_cast<size_t>(mappers) * reducers);
  const bool map_recovered =
      config_.checkpoint_map_stage &&
      TryRestoreMapManifest(manifest_path, fingerprint, mapper_runs.size(),
                            &mapper_runs, &stats);
  stats.map_stage_recovered = map_recovered;
  if (map_recovered) metrics::AddCounter("mapreduce.map_stages_recovered");
  if (!map_recovered) {
    Stopwatch map_watch;
    trace::TraceSpan map_span("mapreduce.map", "mapreduce");
    perf::SpanCounters map_counters(&map_span);
    map_span.SetAttribute("mappers", uint64_t{mappers});
    // Split inputs across mappers round-robin by file; files are the
    // natural split unit since the driver writes one part per previous
    // reducer.
    std::vector<std::vector<std::string>> splits(mappers);
    for (size_t i = 0; i < input_paths.size(); ++i) {
      splits[i % mappers].push_back(input_paths[i]);
    }

    // Per-mapper stats merged afterwards to avoid locking.
    std::vector<JobStats> mapper_stats(mappers);
    std::atomic<uint64_t> input_records{0};
    std::atomic<uint64_t> map_output{0};

    std::vector<std::future<Status>> map_tasks;
    for (uint32_t m = 0; m < mappers; ++m) {
      map_tasks.push_back(pool->Submit([&, m]() -> Status {
        // Injected task attempt failure (the Hadoop "task attempt died"
        // mode); the whole job fails, as it would with task retries off.
        GLY_FAULT_POINT("mapreduce.map.task");
        GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
        auto mapper = mapper_factory_();
        std::unique_ptr<Reducer> combiner =
            combiner_factory_ ? combiner_factory_() : nullptr;
        std::vector<SpillBuffer> buffers;
        buffers.reserve(reducers);
        for (uint32_t r = 0; r < reducers; ++r) {
          buffers.emplace_back(
              spill_dir + StringPrintf("/map-%05u-r-%05u", m, r),
              config_.sort_buffer_bytes, combiner.get(), counters);
        }
        PartitionedEmitter emitter(&buffers, &mapper_stats[m], &map_output);
        uint64_t records_since_poll = 0;
        for (const std::string& path : splits[m]) {
          GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
          GLY_ASSIGN_OR_RETURN(RecordFileReader reader,
                               RecordFileReader::Open(path));
          Record record;
          for (;;) {
            GLY_ASSIGN_OR_RETURN(bool more, reader.Next(&record));
            if (!more) break;
            if (++records_since_poll >= 4096) {
              records_since_poll = 0;
              GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
            }
            input_records.fetch_add(1, std::memory_order_relaxed);
            mapper->Map(record, &emitter, counters);
          }
        }
        GLY_RETURN_NOT_OK(emitter.error());
        for (uint32_t r = 0; r < reducers; ++r) {
          GLY_RETURN_NOT_OK(buffers[r].Spill(&mapper_stats[m]));
          mapper_runs[static_cast<size_t>(m) * reducers + r] =
              buffers[r].run_paths();
        }
        if (config_.cancel != nullptr) config_.cancel->Heartbeat();
        return Status::OK();
      }));
    }
    // Drain every task before acting on failures: queued lambdas reference
    // this frame's locals (and this Job), so an early return on the first
    // failed future would leave still-running tasks with dangling captures.
    Status map_status = Status::OK();
    for (auto& t : map_tasks) {
      Status s = t.get();
      if (map_status.ok()) map_status = std::move(s);
    }
    GLY_RETURN_NOT_OK(map_status);
    stats.map_seconds = map_watch.ElapsedSeconds();
    stats.input_records = input_records.load();
    stats.map_output_records = map_output.load();
    for (const JobStats& ms : mapper_stats) {
      stats.spill_bytes += ms.spill_bytes;
      stats.spill_files += ms.spill_files;
      stats.combined_records += ms.combined_records;
    }
    map_span.SetAttribute("input_records", stats.input_records);
    map_span.SetAttribute("spill_bytes", stats.spill_bytes);
    metrics::AddCounter("mapreduce.spill_bytes", stats.spill_bytes);

    if (config_.checkpoint_map_stage) {
      // Best-effort: a failed manifest write only means a future re-run
      // pays the map phase again.
      Status manifest =
          WriteMapManifest(manifest_path, fingerprint, mapper_runs, stats);
      if (!manifest.ok()) {
        GLY_LOG_WARN << "mapreduce: map manifest write failed: "
                     << manifest.ToString();
      }
    }
  }

  // -------------------------------------------------- shuffle+reduce phase
  Stopwatch reduce_watch;
  std::vector<std::string> output_paths(reducers);
  std::vector<JobStats> reducer_stats(reducers);
  {
  trace::TraceSpan reduce_span("mapreduce.shuffle_reduce", "mapreduce");
  perf::SpanCounters reduce_counters(&reduce_span);
  reduce_span.SetAttribute("reducers", uint64_t{reducers});
  std::vector<std::future<Status>> reduce_tasks;
  for (uint32_t r = 0; r < reducers; ++r) {
    reduce_tasks.push_back(pool->Submit([&, r]() -> Status {
      GLY_FAULT_POINT("mapreduce.reduce.task");
      GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
      // Gather this reducer's run files from every mapper.
      std::vector<MergeSource> sources;
      for (uint32_t m = 0; m < mappers; ++m) {
        for (const std::string& path :
             mapper_runs[static_cast<size_t>(m) * reducers + r]) {
          MergeSource src;
          GLY_ASSIGN_OR_RETURN(RecordFileReader reader,
                               RecordFileReader::Open(path));
          src.reader = std::make_unique<RecordFileReader>(std::move(reader));
          GLY_ASSIGN_OR_RETURN(bool more, src.reader->Next(&src.current));
          src.done = !more;
          if (!src.done) sources.push_back(std::move(src));
        }
      }
      // K-way merge by key.
      auto cmp = [&sources](size_t a, size_t b) {
        return sources[a].current.key > sources[b].current.key;
      };
      std::priority_queue<size_t, std::vector<size_t>, decltype(cmp)> heap(cmp);
      for (size_t i = 0; i < sources.size(); ++i) heap.push(i);

      auto reducer = reducer_factory_();
      std::string out_path =
          output_dir + StringPrintf("/part-%05u", r);
      GLY_ASSIGN_OR_RETURN(RecordFileWriter writer,
                           RecordFileWriter::Open(out_path));
      VectorEmitter out_emitter;

      uint64_t current_key = 0;
      std::vector<std::string> group;
      auto flush_group = [&]() -> Status {
        if (group.empty()) return Status::OK();
        GLY_RETURN_NOT_OK(CheckCancel(config_.cancel));
        reducer->Reduce(current_key, group, &out_emitter, counters);
        for (const Record& rec : out_emitter.records()) {
          GLY_RETURN_NOT_OK(writer.Append(rec));
          ++reducer_stats[r].reduce_output_records;
        }
        out_emitter.records().clear();
        group.clear();
        return Status::OK();
      };

      while (!heap.empty()) {
        size_t i = heap.top();
        heap.pop();
        Record& rec = sources[i].current;
        reducer_stats[r].shuffle_bytes +=
            sizeof(uint64_t) + sizeof(uint32_t) + rec.value.size();
        if (!group.empty() && rec.key != current_key) {
          GLY_RETURN_NOT_OK(flush_group());
        }
        current_key = rec.key;
        group.push_back(std::move(rec.value));
        GLY_ASSIGN_OR_RETURN(bool more, sources[i].reader->Next(&rec));
        if (more) heap.push(i);
      }
      GLY_RETURN_NOT_OK(flush_group());
      GLY_RETURN_NOT_OK(writer.Close());
      reducer_stats[r].output_bytes = writer.bytes_written();
      output_paths[r] = out_path;
      if (config_.cancel != nullptr) config_.cancel->Heartbeat();
      return Status::OK();
    }));
  }
  Status reduce_status = Status::OK();
  for (auto& t : reduce_tasks) {
    Status s = t.get();
    if (reduce_status.ok()) reduce_status = std::move(s);
  }
  GLY_RETURN_NOT_OK(reduce_status);
  stats.shuffle_reduce_seconds = reduce_watch.ElapsedSeconds();
  for (const JobStats& rs : reducer_stats) {
    stats.shuffle_bytes += rs.shuffle_bytes;
    stats.output_bytes += rs.output_bytes;
    stats.reduce_output_records += rs.reduce_output_records;
  }
  reduce_span.SetAttribute("shuffle_bytes", stats.shuffle_bytes);
  metrics::AddCounter("mapreduce.shuffle_bytes", stats.shuffle_bytes);
  }  // mapreduce.shuffle_reduce span

  // Clean spills; the job completed, so the manifest (if any) is obsolete.
  if (config_.checkpoint_map_stage) {
    fs::remove(manifest_path, ec);
    fs::remove(manifest_path + ".tmp", ec);
    fs::remove_all(spill_dir, ec);
  } else {
    for (const auto& runs : mapper_runs) {
      for (const std::string& path : runs) {
        fs::remove(path, ec);
      }
    }
  }

  if (stats_out != nullptr) *stats_out = stats;
  return output_paths;
}

}  // namespace gly::mapreduce
