// Mini MapReduce engine — the "Hadoop MapReduce" substrate.
//
// Executes jobs the way Hadoop does, including the property that dominates
// its Figure 4 runtimes: *all intermediate data is materialized on disk*.
// A job runs in three phases:
//
//   map     — mappers (parallel) consume input splits and emit (key, value)
//             pairs into per-reducer sort buffers; when a buffer exceeds
//             `sort_buffer_bytes` it is sorted and spilled to a run file
//             (optionally combined first);
//   shuffle — each reducer k-way-merges the sorted run files addressed to
//             it (real file reads);
//   reduce  — grouped (key, [values]) pairs are reduced and the output is
//             written to part files, which become the next job's input.
//
// Iterative graph algorithms chain jobs through the driver in
// graph_jobs.h; every iteration re-reads and rewrites the entire graph
// state through the filesystem — the mechanistic source of the 1-2 orders
// of magnitude MapReduce-vs-Giraph gap the paper reports, as opposed to a
// tuned constant.
//
// Counters mirror Hadoop counters and drive convergence checks.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/threadpool.h"
#include "mapreduce/record.h"

namespace gly::mapreduce {

/// Shared named counters (Hadoop-counter-like). Thread-safe.
class Counters {
 public:
  void Increment(const std::string& name, uint64_t delta = 1);
  uint64_t Get(const std::string& name) const;
  std::map<std::string, uint64_t> Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> values_;
};

/// Receives emitted records in map/combine/reduce functions.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(uint64_t key, const std::string& value) = 0;
};

/// User map function: input record -> emitted records.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(const Record& input, Emitter* out, Counters* counters) = 0;
};

/// User reduce function: (key, grouped values) -> emitted records.
/// Also used as the optional combiner.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(uint64_t key, const std::vector<std::string>& values,
                      Emitter* out, Counters* counters) = 0;
};

/// Job configuration.
struct JobConfig {
  uint32_t num_mappers = 4;
  uint32_t num_reducers = 4;

  /// Per-mapper-per-reducer sort buffer; exceeding it spills a sorted run.
  uint64_t sort_buffer_bytes = 8ULL << 20;

  /// Scratch directory for spills and shuffle files (required).
  std::string scratch_dir;

  /// Optional disk throttle (MiB/s per job, 0 = disabled). Left 0 by
  /// default: the real file I/O is the authentic cost.
  double disk_mib_per_s = 0.0;

  /// Simulated per-job startup latency (seconds): Hadoop's job submission,
  /// scheduling, and task-container spawning overhead, paid by every job in
  /// an iterative chain. A large part of why "MapReduce can be two orders
  /// of magnitude slower than Giraph and GraphX". 0 disables.
  double job_startup_s = 0.0;

  /// Map-stage checkpointing: after the map phase, persist a manifest of
  /// the completed spill runs (atomic + checksummed, see common/checkpoint)
  /// into the output directory, and keep the runs there rather than in the
  /// shared scratch. A re-run of the same job (same inputs, mappers,
  /// reducers, output_dir) that previously crashed during shuffle/reduce
  /// then skips the map phase and re-runs only reduce. The manifest and
  /// runs are deleted when the job completes.
  bool checkpoint_map_stage = false;

  /// Cooperative cancellation (null = unsupervised). Polled at job start,
  /// between map splits (and every few thousand records within one),
  /// and between reduce groups; map/reduce tasks bump the token's progress
  /// heartbeat as they complete. A cancelled job fails with the token's
  /// Status (Timeout/Cancelled); partially written outputs are cleaned the
  /// same way a failed task attempt's are.
  CancelToken* cancel = nullptr;
};

/// Phase timing and volume statistics of one job.
struct JobStats {
  uint64_t input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t combined_records = 0;   // records after combiner
  uint64_t reduce_output_records = 0;
  uint64_t spill_bytes = 0;        // bytes written to run files
  uint64_t shuffle_bytes = 0;      // bytes read back during merge
  uint64_t output_bytes = 0;
  double map_seconds = 0.0;
  double shuffle_reduce_seconds = 0.0;
  uint32_t spill_files = 0;
  /// True when the map phase was skipped by restoring a spill manifest
  /// left by a crashed prior run (map-phase fields reflect the original
  /// execution).
  bool map_stage_recovered = false;
};

/// Factory types: one Mapper/Reducer instance per parallel task.
using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// One MapReduce job.
class Job {
 public:
  Job(JobConfig config, MapperFactory mapper_factory,
      ReducerFactory reducer_factory,
      ReducerFactory combiner_factory = nullptr);

  /// Runs the job: reads `input_paths` record files, writes
  /// `num_reducers` part files named part-NNNNN into `output_dir`.
  /// Returns the output part file paths.
  Result<std::vector<std::string>> Run(
      const std::vector<std::string>& input_paths,
      const std::string& output_dir, ThreadPool* pool, Counters* counters,
      JobStats* stats_out = nullptr);

 private:
  JobConfig config_;
  MapperFactory mapper_factory_;
  ReducerFactory reducer_factory_;
  ReducerFactory combiner_factory_;
};

}  // namespace gly::mapreduce
