#include "graph/edge_list.h"

#include <algorithm>

namespace gly {

void EdgeList::Add(VertexId src, VertexId dst) {
  edges_.push_back(Edge{src, dst});
  VertexId hi = std::max(src, dst);
  if (hi >= num_vertices_) num_vertices_ = hi + 1;
}

void EdgeList::Append(const EdgeList& other) {
  edges_.insert(edges_.end(), other.edges_.begin(), other.edges_.end());
  EnsureVertices(other.num_vertices_);
}

void EdgeList::DropSelfLoops() {
  edges_.erase(
      std::remove_if(edges_.begin(), edges_.end(),
                     [](const Edge& e) { return e.src == e.dst; }),
      edges_.end());
}

void EdgeList::Deduplicate() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::DeduplicateAndDropLoops() {
  DropSelfLoops();
  Deduplicate();
}

}  // namespace gly
