// Vertex partitioners for the simulated distributed platforms.
//
// The paper's "excessive network utilization" choke point motivates
// partitioning quality: hash partitioning spreads neighbors across workers
// (max traffic), range partitioning keeps generator locality, and the
// greedy balanced-edge partitioner approximates degree-aware balance to
// counter the "skewed execution intensity" choke point.

#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace gly {

/// Maps every vertex to a worker in [0, num_partitions).
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Partition of vertex `v`.
  virtual uint32_t PartitionOf(VertexId v) const = 0;

  virtual uint32_t num_partitions() const = 0;
};

/// Multiplicative-hash partitioner (default for pregel/dataflow).
class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(uint32_t num_partitions)
      : num_partitions_(num_partitions) {}

  uint32_t PartitionOf(VertexId v) const override {
    uint64_t h = (static_cast<uint64_t>(v) + 1) * 0x9E3779B97F4A7C15ULL;
    return static_cast<uint32_t>((h >> 33) % num_partitions_);
  }
  uint32_t num_partitions() const override { return num_partitions_; }

 private:
  uint32_t num_partitions_;
};

/// Contiguous-range partitioner: vertex v -> floor(v * P / n).
class RangePartitioner final : public Partitioner {
 public:
  RangePartitioner(VertexId num_vertices, uint32_t num_partitions)
      : num_vertices_(num_vertices == 0 ? 1 : num_vertices),
        num_partitions_(num_partitions) {}

  uint32_t PartitionOf(VertexId v) const override {
    return static_cast<uint32_t>(static_cast<uint64_t>(v) * num_partitions_ /
                                 num_vertices_);
  }
  uint32_t num_partitions() const override { return num_partitions_; }

 private:
  VertexId num_vertices_;
  uint32_t num_partitions_;
};

/// Greedy edge-balanced partitioner: assigns vertices in decreasing degree
/// order to the partition with the least accumulated edge weight.
/// Produces an explicit assignment table.
class BalancedEdgePartitioner final : public Partitioner {
 public:
  BalancedEdgePartitioner(const Graph& graph, uint32_t num_partitions);

  uint32_t PartitionOf(VertexId v) const override { return assignment_[v]; }
  uint32_t num_partitions() const override { return num_partitions_; }

  /// Total edge weight per partition (for skew diagnostics).
  const std::vector<uint64_t>& partition_loads() const { return loads_; }

 private:
  uint32_t num_partitions_;
  std::vector<uint32_t> assignment_;
  std::vector<uint64_t> loads_;
};

/// Computes the fraction of adjacency entries whose endpoints fall in
/// different partitions — the "cut ratio" network-traffic proxy.
double EdgeCutRatio(const Graph& graph, const Partitioner& partitioner);

/// Load imbalance: max partition edge load / mean load (1.0 == perfect).
double LoadImbalance(const Graph& graph, const Partitioner& partitioner);

}  // namespace gly
