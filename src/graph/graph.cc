#include "graph/graph.h"

#include <algorithm>

#include "common/string_util.h"

namespace gly {

namespace {

// Builds (offsets, targets) CSR arrays from `edges` keyed on `key`,
// storing `value` per edge. Targets within a row come out sorted because we
// sort the edge array first.
void BuildCsr(std::vector<Edge>& edges, VertexId num_vertices, bool by_src,
              std::vector<EdgeIndex>* offsets, std::vector<VertexId>* targets) {
  std::sort(edges.begin(), edges.end(), [by_src](const Edge& a, const Edge& b) {
    VertexId ka = by_src ? a.src : a.dst;
    VertexId kb = by_src ? b.src : b.dst;
    VertexId va = by_src ? a.dst : a.src;
    VertexId vb = by_src ? b.dst : b.src;
    return ka != kb ? ka < kb : va < vb;
  });
  offsets->assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    VertexId k = by_src ? e.src : e.dst;
    ++(*offsets)[k + 1];
  }
  for (size_t i = 1; i < offsets->size(); ++i) (*offsets)[i] += (*offsets)[i - 1];
  targets->resize(edges.size());
  // Edges are sorted by key, so a single pass fills targets in order.
  for (size_t i = 0; i < edges.size(); ++i) {
    (*targets)[i] = by_src ? edges[i].dst : edges[i].src;
  }
}

}  // namespace

bool Graph::HasEdge(VertexId src, VertexId dst) const {
  auto nbrs = OutNeighbors(src);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

uint64_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeIndex) +
         out_targets_.size() * sizeof(VertexId) +
         in_offsets_.size() * sizeof(EdgeIndex) +
         in_targets_.size() * sizeof(VertexId);
}

EdgeList Graph::ToEdgeList() const {
  EdgeList out(num_vertices());
  out.Reserve(num_edges_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (VertexId w : OutNeighbors(v)) {
      if (undirected_ && w < v) continue;  // emit each mirrored pair once
      out.Add(v, w);
    }
  }
  return out;
}

Status Graph::Validate() const {
  if (out_offsets_.empty()) {
    if (num_edges_ != 0) return Status::Internal("edges without vertices");
    return Status::OK();
  }
  if (out_offsets_.front() != 0 || out_offsets_.back() != out_targets_.size()) {
    return Status::Internal("out offsets do not cover targets");
  }
  if (in_offsets_.front() != 0 || in_offsets_.back() != in_targets_.size()) {
    return Status::Internal("in offsets do not cover targets");
  }
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (out_offsets_[v] > out_offsets_[v + 1]) {
      return Status::Internal("out offsets not monotone at " + std::to_string(v));
    }
    auto nbrs = OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) return Status::Internal("target out of range");
      if (i > 0 && nbrs[i - 1] > nbrs[i]) {
        return Status::Internal("adjacency not sorted at vertex " +
                                std::to_string(v));
      }
    }
  }
  // out and in must describe the same multiset of edges.
  if (out_targets_.size() != in_targets_.size()) {
    return Status::Internal("in/out entry count mismatch");
  }
  if (undirected_) {
    // Every (v,w) must have a mirror (w,v).
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w : OutNeighbors(v)) {
        if (!HasEdge(w, v)) {
          return Status::Internal(StringPrintf(
              "undirected graph missing mirror edge (%u,%u)", w, v));
        }
      }
    }
  }
  return Status::OK();
}

Result<Graph> GraphBuilder::Directed(const EdgeList& edges, bool dedup) {
  Graph g;
  g.undirected_ = false;
  std::vector<Edge> work = edges.edges();
  if (dedup) {
    work.erase(std::remove_if(work.begin(), work.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               work.end());
    std::sort(work.begin(), work.end());
    work.erase(std::unique(work.begin(), work.end()), work.end());
  }
  g.num_edges_ = work.size();
  BuildCsr(work, edges.num_vertices(), /*by_src=*/true, &g.out_offsets_,
           &g.out_targets_);
  BuildCsr(work, edges.num_vertices(), /*by_src=*/false, &g.in_offsets_,
           &g.in_targets_);
  return g;
}

Result<Graph> GraphBuilder::Undirected(const EdgeList& edges) {
  Graph g;
  g.undirected_ = true;
  std::vector<Edge> work;
  work.reserve(edges.num_edges() * 2);
  for (const Edge& e : edges.edges()) {
    if (e.src == e.dst) continue;
    // Canonical orientation first, then mirror; dedup below removes repeats.
    work.push_back(Edge{e.src, e.dst});
    work.push_back(Edge{e.dst, e.src});
  }
  std::sort(work.begin(), work.end());
  work.erase(std::unique(work.begin(), work.end()), work.end());
  g.num_edges_ = work.size() / 2;
  BuildCsr(work, edges.num_vertices(), /*by_src=*/true, &g.out_offsets_,
           &g.out_targets_);
  BuildCsr(work, edges.num_vertices(), /*by_src=*/false, &g.in_offsets_,
           &g.in_targets_);
  return g;
}

}  // namespace gly
