#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>

#include "common/macros.h"
#include "common/string_util.h"
#include "common/perf_counters.h"
#include "common/trace.h"

namespace gly {

namespace {

// Chunk sizes for the parallel build: small enough to balance skewed rows,
// large enough that per-chunk dispatch cost stays invisible.
constexpr size_t kEdgeGrain = 4096;
constexpr size_t kRowGrain = 1024;

// Builds (offsets, targets) CSR arrays from `edges` keyed on `key`,
// storing `value` per edge. Targets within a row come out sorted because we
// sort the edge array first.
void BuildCsr(std::vector<Edge>& edges, VertexId num_vertices, bool by_src,
              std::vector<EdgeIndex>* offsets, std::vector<VertexId>* targets) {
  std::sort(edges.begin(), edges.end(), [by_src](const Edge& a, const Edge& b) {
    VertexId ka = by_src ? a.src : a.dst;
    VertexId kb = by_src ? b.src : b.dst;
    VertexId va = by_src ? a.dst : a.src;
    VertexId vb = by_src ? b.dst : b.src;
    return ka != kb ? ka < kb : va < vb;
  });
  offsets->assign(static_cast<size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) {
    VertexId k = by_src ? e.src : e.dst;
    ++(*offsets)[k + 1];
  }
  for (size_t i = 1; i < offsets->size(); ++i) (*offsets)[i] += (*offsets)[i - 1];
  targets->resize(edges.size());
  // Edges are sorted by key, so a single pass fills targets in order.
  for (size_t i = 0; i < edges.size(); ++i) {
    (*targets)[i] = by_src ? edges[i].dst : edges[i].src;
  }
}

// ------------------------------------------------------- parallel build
//
// The parallel path replaces the serial global sort with counting +
// scatter + a per-vertex sort. Determinism argument: the serial build
// sorts edges by (key, value), so row `v` of the serial CSR is exactly
// the multiset of values keyed by `v` in ascending order. The parallel
// scatter places the same multiset into row `v` in arbitrary order, and
// the per-row sort restores ascending order — hence bit-identical
// offsets and target arrays at any thread count.

// In-place inclusive prefix sum over `offsets`: on entry offsets[0] == 0
// and offsets[v + 1] holds row v's count; on exit offsets[v + 1] is the
// running total through row v. Chunked two-pass scan on `pool`.
void ParallelPrefixSum(std::vector<EdgeIndex>* offsets, ThreadPool& pool) {
  const size_t n = offsets->size() - 1;
  if (n < 4096 || pool.num_threads() <= 1) {
    for (size_t i = 1; i <= n; ++i) (*offsets)[i] += (*offsets)[i - 1];
    return;
  }
  const size_t chunks = std::min(n, pool.num_threads() * 4);
  const size_t chunk_size = (n + chunks - 1) / chunks;
  std::vector<EdgeIndex> bases(chunks + 1, 0);
  pool.ParallelFor(0, chunks, 1, [&](size_t c) {
    const size_t lo = 1 + c * chunk_size;
    const size_t hi = std::min(n + 1, lo + chunk_size);
    EdgeIndex sum = 0;
    for (size_t i = lo; i < hi; ++i) sum += (*offsets)[i];
    bases[c + 1] = sum;
  });
  for (size_t c = 1; c <= chunks; ++c) bases[c] += bases[c - 1];
  pool.ParallelFor(0, chunks, 1, [&](size_t c) {
    const size_t lo = 1 + c * chunk_size;
    const size_t hi = std::min(n + 1, lo + chunk_size);
    EdgeIndex running = bases[c];
    for (size_t i = lo; i < hi; ++i) {
      running += (*offsets)[i];
      (*offsets)[i] = running;
    }
  });
}

// Builds one CSR side from `edges` with atomic degree counting, parallel
// prefix sum, parallel scatter, and a deterministic per-row sort. With
// `mirror`, every edge also contributes its reverse (the undirected
// build); `drop_self_loops` skips src == dst edges entirely.
void ParallelBuildSide(const std::vector<Edge>& edges, VertexId num_vertices,
                       bool by_src, bool mirror, bool drop_self_loops,
                       ThreadPool& pool, const CancelToken* cancel,
                       std::vector<EdgeIndex>* offsets,
                       std::vector<VertexId>* targets) {
  const size_t n = num_vertices;
  std::unique_ptr<std::atomic<EdgeIndex>[]> cursor(
      new std::atomic<EdgeIndex>[n]());
  pool.ParallelForChunked(0, edges.size(), kEdgeGrain,
                          [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      if (drop_self_loops && e.src == e.dst) continue;
      cursor[by_src ? e.src : e.dst].fetch_add(1, std::memory_order_relaxed);
      if (mirror) {
        cursor[by_src ? e.dst : e.src].fetch_add(1,
                                                 std::memory_order_relaxed);
      }
    }
  }, cancel);
  offsets->assign(n + 1, 0);
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      (*offsets)[v + 1] = cursor[v].exchange(0, std::memory_order_relaxed);
    }
  });
  ParallelPrefixSum(offsets, pool);
  targets->resize(offsets->back());
  pool.ParallelForChunked(0, edges.size(), kEdgeGrain,
                          [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      if (drop_self_loops && e.src == e.dst) continue;
      VertexId k = by_src ? e.src : e.dst;
      VertexId value = by_src ? e.dst : e.src;
      (*targets)[(*offsets)[k] +
                 cursor[k].fetch_add(1, std::memory_order_relaxed)] = value;
      if (mirror) {
        (*targets)[(*offsets)[value] +
                   cursor[value].fetch_add(1, std::memory_order_relaxed)] = k;
      }
    }
  }, cancel);
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      std::sort(targets->begin() + static_cast<ptrdiff_t>((*offsets)[v]),
                targets->begin() + static_cast<ptrdiff_t>((*offsets)[v + 1]));
    }
  }, cancel);
}

// Per-row duplicate removal + compaction (rows must be sorted). Matches
// the serial global sort + std::unique exactly, because duplicates of a
// (key, value) pair are always adjacent within their sorted row.
void DedupRows(std::vector<EdgeIndex>* offsets, std::vector<VertexId>* targets,
               ThreadPool& pool, const CancelToken* cancel) {
  const size_t n = offsets->size() - 1;
  std::vector<EdgeIndex> unique_offsets(n + 1, 0);
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      EdgeIndex write = (*offsets)[v];
      for (EdgeIndex r = (*offsets)[v]; r < (*offsets)[v + 1]; ++r) {
        if (write == (*offsets)[v] || (*targets)[r] != (*targets)[write - 1]) {
          (*targets)[write++] = (*targets)[r];
        }
      }
      unique_offsets[v + 1] = write - (*offsets)[v];
    }
  }, cancel);
  ParallelPrefixSum(&unique_offsets, pool);
  std::vector<VertexId> compacted(unique_offsets.back());
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      std::copy_n(targets->begin() + static_cast<ptrdiff_t>((*offsets)[v]),
                  unique_offsets[v + 1] - unique_offsets[v],
                  compacted.begin() +
                      static_cast<ptrdiff_t>(unique_offsets[v]));
    }
  });
  *offsets = std::move(unique_offsets);
  *targets = std::move(compacted);
}

// Builds the in-CSR from a finished out-CSR (used by the deduped directed
// build, whose surviving edge set exists only in CSR form).
void BuildInFromOut(const std::vector<EdgeIndex>& out_offsets,
                    const std::vector<VertexId>& out_targets,
                    ThreadPool& pool, const CancelToken* cancel,
                    std::vector<EdgeIndex>* in_offsets,
                    std::vector<VertexId>* in_targets) {
  const size_t n = out_offsets.size() - 1;
  std::unique_ptr<std::atomic<EdgeIndex>[]> cursor(
      new std::atomic<EdgeIndex>[n]());
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      for (EdgeIndex r = out_offsets[v]; r < out_offsets[v + 1]; ++r) {
        cursor[out_targets[r]].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }, cancel);
  in_offsets->assign(n + 1, 0);
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      (*in_offsets)[v + 1] = cursor[v].exchange(0, std::memory_order_relaxed);
    }
  });
  ParallelPrefixSum(in_offsets, pool);
  in_targets->resize(in_offsets->back());
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      for (EdgeIndex r = out_offsets[v]; r < out_offsets[v + 1]; ++r) {
        VertexId w = out_targets[r];
        (*in_targets)[(*in_offsets)[w] +
                      cursor[w].fetch_add(1, std::memory_order_relaxed)] =
            static_cast<VertexId>(v);
      }
    }
  });
  pool.ParallelForChunked(0, n, kRowGrain, [&](size_t begin, size_t end) {
    for (size_t v = begin; v < end; ++v) {
      std::sort(
          in_targets->begin() + static_cast<ptrdiff_t>((*in_offsets)[v]),
          in_targets->begin() + static_cast<ptrdiff_t>((*in_offsets)[v + 1]));
    }
  });
}

}  // namespace

Result<Graph> GraphBuilder::ParallelDirected(const EdgeList& edges, bool dedup,
                                             ThreadPool& pool,
                                             const CancelToken* cancel) {
  trace::TraceSpan csr_span("etl.csr_build", "etl");
  perf::SpanCounters csr_counters(&csr_span);
  csr_span.SetAttribute("edges", uint64_t{edges.num_edges()});
  Graph g;
  g.undirected_ = false;
  // Cancellation note: a cancelled parallel pass may have skipped chunks,
  // leaving a partially built (inconsistent) CSR side; every phase boundary
  // therefore polls the token and discards the build before the partial
  // data is ever read.
  ParallelBuildSide(edges.edges(), edges.num_vertices(), /*by_src=*/true,
                    /*mirror=*/false, /*drop_self_loops=*/dedup, pool, cancel,
                    &g.out_offsets_, &g.out_targets_);
  GLY_RETURN_NOT_OK(CheckCancel(cancel));
  if (dedup) {
    DedupRows(&g.out_offsets_, &g.out_targets_, pool, cancel);
    GLY_RETURN_NOT_OK(CheckCancel(cancel));
    g.num_edges_ = g.out_targets_.size();
    BuildInFromOut(g.out_offsets_, g.out_targets_, pool, cancel,
                   &g.in_offsets_, &g.in_targets_);
  } else {
    g.num_edges_ = g.out_targets_.size();
    ParallelBuildSide(edges.edges(), edges.num_vertices(), /*by_src=*/false,
                      /*mirror=*/false, /*drop_self_loops=*/false, pool,
                      cancel, &g.in_offsets_, &g.in_targets_);
  }
  GLY_RETURN_NOT_OK(CheckCancel(cancel));
  return g;
}

Result<Graph> GraphBuilder::ParallelUndirected(const EdgeList& edges,
                                               ThreadPool& pool,
                                               const CancelToken* cancel) {
  trace::TraceSpan csr_span("etl.csr_build", "etl");
  perf::SpanCounters csr_counters(&csr_span);
  csr_span.SetAttribute("edges", uint64_t{edges.num_edges()});
  Graph g;
  g.undirected_ = true;
  ParallelBuildSide(edges.edges(), edges.num_vertices(), /*by_src=*/true,
                    /*mirror=*/true, /*drop_self_loops=*/true, pool, cancel,
                    &g.out_offsets_, &g.out_targets_);
  GLY_RETURN_NOT_OK(CheckCancel(cancel));
  DedupRows(&g.out_offsets_, &g.out_targets_, pool, cancel);
  GLY_RETURN_NOT_OK(CheckCancel(cancel));
  g.num_edges_ = g.out_targets_.size() / 2;
  // The deduped mirrored adjacency is symmetric, so the in-CSR the serial
  // path builds independently is identical to the out-CSR — copy it.
  g.in_offsets_ = g.out_offsets_;
  g.in_targets_ = g.out_targets_;
  return g;
}

bool Graph::HasEdge(VertexId src, VertexId dst) const {
  auto nbrs = OutNeighbors(src);
  return std::binary_search(nbrs.begin(), nbrs.end(), dst);
}

uint64_t Graph::MemoryBytes() const {
  return out_offsets_.size() * sizeof(EdgeIndex) +
         out_targets_.size() * sizeof(VertexId) +
         in_offsets_.size() * sizeof(EdgeIndex) +
         in_targets_.size() * sizeof(VertexId);
}

EdgeList Graph::ToEdgeList() const {
  EdgeList out(num_vertices());
  out.Reserve(num_edges_);
  for (VertexId v = 0; v < num_vertices(); ++v) {
    for (VertexId w : OutNeighbors(v)) {
      if (undirected_ && w < v) continue;  // emit each mirrored pair once
      out.Add(v, w);
    }
  }
  return out;
}

Status Graph::Validate() const {
  if (out_offsets_.empty()) {
    if (num_edges_ != 0) return Status::Internal("edges without vertices");
    return Status::OK();
  }
  if (out_offsets_.front() != 0 || out_offsets_.back() != out_targets_.size()) {
    return Status::Internal("out offsets do not cover targets");
  }
  if (in_offsets_.front() != 0 || in_offsets_.back() != in_targets_.size()) {
    return Status::Internal("in offsets do not cover targets");
  }
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    if (out_offsets_[v] > out_offsets_[v + 1]) {
      return Status::Internal("out offsets not monotone at " + std::to_string(v));
    }
    auto nbrs = OutNeighbors(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] >= n) return Status::Internal("target out of range");
      if (i > 0 && nbrs[i - 1] > nbrs[i]) {
        return Status::Internal("adjacency not sorted at vertex " +
                                std::to_string(v));
      }
    }
  }
  // out and in must describe the same multiset of edges.
  if (out_targets_.size() != in_targets_.size()) {
    return Status::Internal("in/out entry count mismatch");
  }
  if (undirected_) {
    // Every (v,w) must have a mirror (w,v).
    for (VertexId v = 0; v < n; ++v) {
      for (VertexId w : OutNeighbors(v)) {
        if (!HasEdge(w, v)) {
          return Status::Internal(StringPrintf(
              "undirected graph missing mirror edge (%u,%u)", w, v));
        }
      }
    }
  }
  return Status::OK();
}

std::vector<VertexId> DegreeDescendingOrder(const Graph& graph) {
  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&graph](VertexId a, VertexId b) {
    uint64_t da = graph.OutDegree(a);
    uint64_t db = graph.OutDegree(b);
    return da != db ? da > db : a < b;
  });
  return order;
}

ReorderedGraph Graph::ReorderByDegree(ThreadPool* pool) const {
  ReorderedGraph out;
  if (out_offsets_.empty()) return out;  // empty graph: empty permutation
  const VertexId n = num_vertices();
  out.perm.new_to_old = DegreeDescendingOrder(*this);
  out.perm.old_to_new.resize(n);
  for (VertexId i = 0; i < n; ++i) {
    out.perm.old_to_new[out.perm.new_to_old[i]] = i;
  }

  Graph& g = out.graph;
  g.undirected_ = undirected_;
  g.num_edges_ = num_edges_;
  auto relabel_side = [&](const std::vector<EdgeIndex>& src_offsets,
                          const std::vector<VertexId>& src_targets,
                          std::vector<EdgeIndex>* offsets,
                          std::vector<VertexId>* targets) {
    offsets->assign(static_cast<size_t>(n) + 1, 0);
    for (VertexId i = 0; i < n; ++i) {
      VertexId old = out.perm.new_to_old[i];
      (*offsets)[i + 1] = src_offsets[old + 1] - src_offsets[old];
    }
    for (size_t i = 1; i <= n; ++i) (*offsets)[i] += (*offsets)[i - 1];
    targets->resize(offsets->back());
    auto fill_rows = [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        VertexId old = out.perm.new_to_old[i];
        EdgeIndex w = (*offsets)[i];
        for (EdgeIndex r = src_offsets[old]; r < src_offsets[old + 1]; ++r) {
          (*targets)[w++] = out.perm.old_to_new[src_targets[r]];
        }
        std::sort(targets->begin() + static_cast<ptrdiff_t>((*offsets)[i]),
                  targets->begin() + static_cast<ptrdiff_t>((*offsets)[i + 1]));
      }
    };
    if (pool != nullptr) {
      pool->ParallelForChunked(0, n, kRowGrain, fill_rows);
    } else {
      fill_rows(0, n);
    }
  };
  relabel_side(out_offsets_, out_targets_, &g.out_offsets_, &g.out_targets_);
  if (undirected_) {
    g.in_offsets_ = g.out_offsets_;
    g.in_targets_ = g.out_targets_;
  } else {
    relabel_side(in_offsets_, in_targets_, &g.in_offsets_, &g.in_targets_);
  }
  return out;
}

Result<Graph> GraphBuilder::Directed(const EdgeList& edges, bool dedup) {
  trace::TraceSpan csr_span("etl.csr_build", "etl");
  perf::SpanCounters csr_counters(&csr_span);
  csr_span.SetAttribute("edges", uint64_t{edges.num_edges()});
  Graph g;
  g.undirected_ = false;
  std::vector<Edge> work = edges.edges();
  if (dedup) {
    work.erase(std::remove_if(work.begin(), work.end(),
                              [](const Edge& e) { return e.src == e.dst; }),
               work.end());
    std::sort(work.begin(), work.end());
    work.erase(std::unique(work.begin(), work.end()), work.end());
  }
  g.num_edges_ = work.size();
  BuildCsr(work, edges.num_vertices(), /*by_src=*/true, &g.out_offsets_,
           &g.out_targets_);
  BuildCsr(work, edges.num_vertices(), /*by_src=*/false, &g.in_offsets_,
           &g.in_targets_);
  return g;
}

Result<Graph> GraphBuilder::Directed(const EdgeList& edges,
                                     const CsrBuildOptions& options) {
  if (options.pool != nullptr) {
    return ParallelDirected(edges, options.dedup, *options.pool,
                            options.cancel);
  }
  if (options.threads > 1) {
    ThreadPool pool(options.threads);
    return ParallelDirected(edges, options.dedup, pool, options.cancel);
  }
  GLY_RETURN_NOT_OK(CheckCancel(options.cancel));
  return Directed(edges, options.dedup);
}

Result<Graph> GraphBuilder::Undirected(const EdgeList& edges) {
  trace::TraceSpan csr_span("etl.csr_build", "etl");
  perf::SpanCounters csr_counters(&csr_span);
  csr_span.SetAttribute("edges", uint64_t{edges.num_edges()});
  Graph g;
  g.undirected_ = true;
  std::vector<Edge> work;
  work.reserve(edges.num_edges() * 2);
  for (const Edge& e : edges.edges()) {
    if (e.src == e.dst) continue;
    // Canonical orientation first, then mirror; dedup below removes repeats.
    work.push_back(Edge{e.src, e.dst});
    work.push_back(Edge{e.dst, e.src});
  }
  std::sort(work.begin(), work.end());
  work.erase(std::unique(work.begin(), work.end()), work.end());
  g.num_edges_ = work.size() / 2;
  BuildCsr(work, edges.num_vertices(), /*by_src=*/true, &g.out_offsets_,
           &g.out_targets_);
  BuildCsr(work, edges.num_vertices(), /*by_src=*/false, &g.in_offsets_,
           &g.in_targets_);
  return g;
}

Result<Graph> GraphBuilder::Undirected(const EdgeList& edges,
                                       const CsrBuildOptions& options) {
  if (options.pool != nullptr) {
    return ParallelUndirected(edges, *options.pool, options.cancel);
  }
  if (options.threads > 1) {
    ThreadPool pool(options.threads);
    return ParallelUndirected(edges, pool, options.cancel);
  }
  GLY_RETURN_NOT_OK(CheckCancel(options.cancel));
  return Undirected(edges);
}

}  // namespace gly
