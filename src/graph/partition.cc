#include "graph/partition.h"

#include <algorithm>
#include <numeric>

namespace gly {

BalancedEdgePartitioner::BalancedEdgePartitioner(const Graph& graph,
                                                 uint32_t num_partitions)
    : num_partitions_(num_partitions),
      assignment_(graph.num_vertices(), 0),
      loads_(num_partitions, 0) {
  // Same degree-descending order Graph::ReorderByDegree uses, so the
  // partitioner and the locality reordering agree on what a "hub" is.
  for (VertexId v : DegreeDescendingOrder(graph)) {
    uint32_t best = 0;
    for (uint32_t p = 1; p < num_partitions_; ++p) {
      if (loads_[p] < loads_[best]) best = p;
    }
    assignment_[v] = best;
    // +1 so zero-degree vertices still spread across partitions.
    loads_[best] += graph.OutDegree(v) + 1;
  }
}

double EdgeCutRatio(const Graph& graph, const Partitioner& partitioner) {
  if (graph.num_adjacency_entries() == 0) return 0.0;
  uint64_t cut = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    uint32_t pv = partitioner.PartitionOf(v);
    for (VertexId w : graph.OutNeighbors(v)) {
      if (partitioner.PartitionOf(w) != pv) ++cut;
    }
  }
  return static_cast<double>(cut) /
         static_cast<double>(graph.num_adjacency_entries());
}

double LoadImbalance(const Graph& graph, const Partitioner& partitioner) {
  uint32_t p = partitioner.num_partitions();
  if (p == 0 || graph.num_vertices() == 0) return 1.0;
  std::vector<uint64_t> loads(p, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    loads[partitioner.PartitionOf(v)] += graph.OutDegree(v) + 1;
  }
  uint64_t total = std::accumulate(loads.begin(), loads.end(), uint64_t{0});
  uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  double mean = static_cast<double>(total) / p;
  return mean == 0.0 ? 1.0 : static_cast<double>(max_load) / mean;
}

}  // namespace gly
