#include "graph/io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace gly {

namespace {
constexpr char kMagic[8] = {'G', 'L', 'Y', 'E', 'D', 'G', 'E', '1'};
}  // namespace

Status WriteEdgeListText(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# graphalytics edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.src << ' ' << e.dst << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  EdgeList edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = SplitWhitespace(sv);
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          StringPrintf("%s:%zu: expected 'src dst'", path.c_str(), line_no));
    }
    GLY_ASSIGN_OR_RETURN(uint64_t src, ParseUint64(fields[0]));
    GLY_ASSIGN_OR_RETURN(uint64_t dst, ParseUint64(fields[1]));
    if (src > kInvalidVertex - 1 || dst > kInvalidVertex - 1) {
      return Status::InvalidArgument(
          StringPrintf("%s:%zu: vertex id too large", path.c_str(), line_no));
    }
    edges.Add(static_cast<VertexId>(src), static_cast<VertexId>(dst));
  }
  return edges;
}

Status WriteEdgeListBinary(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  uint64_t nv = edges.num_vertices();
  uint64_t ne = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&nv), sizeof(nv));
  out.write(reinterpret_cast<const char*>(&ne), sizeof(ne));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(ne * sizeof(Edge)));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t nv = 0;
  uint64_t ne = 0;
  in.read(reinterpret_cast<char*>(&nv), sizeof(nv));
  in.read(reinterpret_cast<char*>(&ne), sizeof(ne));
  if (!in) return Status::IOError("truncated header in " + path);
  if (nv > kInvalidVertex) {
    return Status::InvalidArgument("vertex count too large in " + path);
  }
  EdgeList edges(static_cast<VertexId>(nv));
  edges.mutable_edges().resize(ne);
  in.read(reinterpret_cast<char*>(edges.mutable_edges().data()),
          static_cast<std::streamsize>(ne * sizeof(Edge)));
  if (!in) return Status::IOError("truncated edge data in " + path);
  for (const Edge& e : edges.edges()) {
    if (e.src >= nv || e.dst >= nv) {
      return Status::InvalidArgument("edge endpoint out of range in " + path);
    }
  }
  return edges;
}

Status WriteVertexFile(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    out << v << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ApplyVertexFile(const std::string& path, EdgeList* edges) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    GLY_ASSIGN_OR_RETURN(uint64_t v, ParseUint64(sv));
    if (v >= kInvalidVertex) {
      return Status::InvalidArgument(
          StringPrintf("%s:%zu: vertex id too large", path.c_str(), line_no));
    }
    edges->EnsureVertices(static_cast<VertexId>(v) + 1);
  }
  return Status::OK();
}

Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix) {
  GLY_ASSIGN_OR_RETURN(EdgeList edges, ReadEdgeListText(prefix + ".e"));
  std::ifstream probe(prefix + ".v");
  if (probe) {
    probe.close();
    GLY_RETURN_NOT_OK(ApplyVertexFile(prefix + ".v", &edges));
  }
  return edges;
}

}  // namespace gly
