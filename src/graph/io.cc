#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/macros.h"
#include "common/string_util.h"

namespace gly {

namespace {
constexpr char kMagic[8] = {'G', 'L', 'Y', 'E', 'D', 'G', 'E', '1'};
}  // namespace

Status WriteEdgeListText(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# graphalytics edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.src << ' ' << e.dst << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListText(const std::string& path) {
  return ReadEdgeListText(path, EdgeListParseOptions{});
}

Result<EdgeList> ReadEdgeListText(const std::string& path,
                                  const EdgeListParseOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  const uint64_t id_limit =
      std::min<uint64_t>(options.max_vertex_id, kInvalidVertex - 1);
  EdgeList edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = SplitWhitespace(sv);
    if (fields.size() < 2) {
      return Status::InvalidArgument(
          StringPrintf("%s:%zu: expected 'src dst'", path.c_str(), line_no));
    }
    // Prefix parse failures (non-numeric tokens, uint64 overflow, trailing
    // garbage) with the offending location.
    auto src_parsed = ParseUint64(fields[0]);
    auto dst_parsed = ParseUint64(fields[1]);
    if (!src_parsed.ok() || !dst_parsed.ok()) {
      const Status& bad =
          src_parsed.ok() ? dst_parsed.status() : src_parsed.status();
      return bad.WithPrefix(StringPrintf("%s:%zu", path.c_str(), line_no));
    }
    uint64_t src = src_parsed.ValueOrDie();
    uint64_t dst = dst_parsed.ValueOrDie();
    if (src > id_limit || dst > id_limit) {
      return Status::InvalidArgument(StringPrintf(
          "%s:%zu: vertex id %llu exceeds limit %llu", path.c_str(), line_no,
          (unsigned long long)std::max(src, dst),
          (unsigned long long)id_limit));
    }
    if (options.drop_self_loops && src == dst) continue;
    edges.Add(static_cast<VertexId>(src), static_cast<VertexId>(dst));
  }
  if (in.bad()) return Status::IOError("read failed: " + path);
  if (options.drop_duplicates) edges.Deduplicate();
  return edges;
}

Status WriteEdgeListBinary(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  uint64_t nv = edges.num_vertices();
  uint64_t ne = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&nv), sizeof(nv));
  out.write(reinterpret_cast<const char*>(&ne), sizeof(ne));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(ne * sizeof(Edge)));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t nv = 0;
  uint64_t ne = 0;
  in.read(reinterpret_cast<char*>(&nv), sizeof(nv));
  in.read(reinterpret_cast<char*>(&ne), sizeof(ne));
  if (!in) return Status::IOError("truncated header in " + path);
  if (nv > kInvalidVertex) {
    return Status::InvalidArgument("vertex count too large in " + path);
  }
  // Sanity-check the declared edge count against the file size before
  // allocating: a corrupt header must not turn into a huge allocation.
  std::error_code ec;
  uint64_t file_size = std::filesystem::file_size(path, ec);
  constexpr uint64_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint64_t);
  if (ec || file_size < kHeaderBytes ||
      ne > (file_size - kHeaderBytes) / sizeof(Edge)) {
    return Status::InvalidArgument(StringPrintf(
        "%s: header declares %llu edges but file has %llu bytes",
        path.c_str(), (unsigned long long)ne, (unsigned long long)file_size));
  }
  EdgeList edges(static_cast<VertexId>(nv));
  edges.mutable_edges().resize(ne);
  in.read(reinterpret_cast<char*>(edges.mutable_edges().data()),
          static_cast<std::streamsize>(ne * sizeof(Edge)));
  if (!in) return Status::IOError("truncated edge data in " + path);
  for (const Edge& e : edges.edges()) {
    if (e.src >= nv || e.dst >= nv) {
      return Status::InvalidArgument("edge endpoint out of range in " + path);
    }
  }
  return edges;
}

Status WriteVertexFile(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    out << v << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ApplyVertexFile(const std::string& path, EdgeList* edges) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    GLY_ASSIGN_OR_RETURN(uint64_t v, ParseUint64(sv));
    if (v >= kInvalidVertex) {
      return Status::InvalidArgument(
          StringPrintf("%s:%zu: vertex id too large", path.c_str(), line_no));
    }
    edges->EnsureVertices(static_cast<VertexId>(v) + 1);
  }
  return Status::OK();
}

Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix) {
  return ReadGraphalyticsDataset(prefix, EdgeListParseOptions{});
}

Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix,
                                         const EdgeListParseOptions& options) {
  GLY_ASSIGN_OR_RETURN(EdgeList edges,
                       ReadEdgeListText(prefix + ".e", options));
  std::ifstream probe(prefix + ".v");
  if (probe) {
    probe.close();
    GLY_RETURN_NOT_OK(ApplyVertexFile(prefix + ".v", &edges));
  }
  return edges;
}

}  // namespace gly
