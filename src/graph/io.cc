#include "graph/io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string_view>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/perf_counters.h"
#include "common/trace.h"

namespace gly {

namespace {
constexpr char kMagic[8] = {'G', 'L', 'Y', 'E', 'D', 'G', 'E', '1'};

/// Clamped id bound shared by the serial and parallel text parsers.
uint64_t IdLimit(const EdgeListParseOptions& options) {
  return std::min<uint64_t>(options.max_vertex_id, kInvalidVertex - 1);
}

/// Parses one text edge line (getline semantics: no trailing newline).
/// On success sets `*keep` (false for comments, blanks, and dropped
/// self-loops) and `*edge` when kept. Every error carries the exact
/// `path:line:` prefix the serial loader has always produced — the one
/// parser both the serial and the chunked parallel paths call.
Status ParseEdgeLine(std::string_view raw, const std::string& path,
                     size_t line_no, const EdgeListParseOptions& options,
                     uint64_t id_limit, bool* keep, Edge* edge) {
  *keep = false;
  std::string_view sv = Trim(raw);
  if (sv.empty() || sv[0] == '#') return Status::OK();
  auto fields = SplitWhitespace(sv);
  if (fields.size() < 2) {
    return Status::InvalidArgument(
        StringPrintf("%s:%zu: expected 'src dst'", path.c_str(), line_no));
  }
  // Prefix parse failures (non-numeric tokens, uint64 overflow, trailing
  // garbage) with the offending location.
  auto src_parsed = ParseUint64(fields[0]);
  auto dst_parsed = ParseUint64(fields[1]);
  if (!src_parsed.ok() || !dst_parsed.ok()) {
    const Status& bad =
        src_parsed.ok() ? dst_parsed.status() : src_parsed.status();
    return bad.WithPrefix(StringPrintf("%s:%zu", path.c_str(), line_no));
  }
  uint64_t src = src_parsed.ValueOrDie();
  uint64_t dst = dst_parsed.ValueOrDie();
  if (src > id_limit || dst > id_limit) {
    return Status::InvalidArgument(StringPrintf(
        "%s:%zu: vertex id %llu exceeds limit %llu", path.c_str(), line_no,
        (unsigned long long)std::max(src, dst), (unsigned long long)id_limit));
  }
  if (options.drop_self_loops && src == dst) return Status::OK();
  *keep = true;
  *edge = Edge{static_cast<VertexId>(src), static_cast<VertexId>(dst)};
  return Status::OK();
}

}  // namespace


Status WriteEdgeListText(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out << "# graphalytics edge list: " << edges.num_vertices() << " vertices, "
      << edges.num_edges() << " edges\n";
  for (const Edge& e : edges.edges()) {
    out << e.src << ' ' << e.dst << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListText(const std::string& path) {
  return ReadEdgeListText(path, EdgeListParseOptions{});
}

namespace {

Result<EdgeList> ReadEdgeListTextSerial(const std::string& path,
                                        const EdgeListParseOptions& options,
                                        const CancelToken* cancel) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  const uint64_t id_limit = IdLimit(options);
  EdgeList edges;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no % 4096 == 0) GLY_RETURN_NOT_OK(CheckCancel(cancel));
    bool keep = false;
    Edge edge{0, 0};
    GLY_RETURN_NOT_OK(
        ParseEdgeLine(line, path, line_no, options, id_limit, &keep, &edge));
    if (keep) edges.Add(edge.src, edge.dst);
  }
  // A stream that goes bad() mid-file (I/O error, not EOF) must surface,
  // never silently truncate the graph.
  if (in.bad()) return Status::IOError("read failed: " + path);
  if (options.drop_duplicates) edges.Deduplicate();
  return edges;
}

}  // namespace

Result<EdgeList> ReadEdgeListText(const std::string& path,
                                  const EdgeListParseOptions& options) {
  return ReadEdgeListTextSerial(path, options, /*cancel=*/nullptr);
}

Result<EdgeList> ReadEdgeListText(const std::string& path,
                                  const EdgeListParseOptions& options,
                                  const EtlOptions& etl) {
  if (etl.pool == nullptr && etl.threads <= 1) {
    return ReadEdgeListTextSerial(path, options, etl.cancel);
  }
  trace::TraceSpan parse_span("etl.parse", "etl");
  perf::SpanCounters parse_counters(&parse_span);
  std::optional<ThreadPool> own_pool;
  ThreadPool* pool = etl.pool;
  if (pool == nullptr) {
    own_pool.emplace(etl.threads);
    pool = &*own_pool;
  }

  // Whole-file slurp: the parallel parser needs random access to place
  // chunk boundaries on newlines. A short read (disk error mid-file) is an
  // IOError exactly like the serial loader's bad() check.
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff file_size = in.tellg();
  if (file_size < 0) return Status::IOError("read failed: " + path);
  std::string buffer;
  buffer.resize(static_cast<size_t>(file_size));
  in.seekg(0);
  in.read(buffer.data(), file_size);
  if (in.bad() || in.gcount() != file_size) {
    return Status::IOError("read failed: " + path);
  }
  in.close();
  const std::string_view text(buffer);

  // Chunk boundaries: aim for several chunks per pool thread, each starting
  // right after a newline so no line is ever split across chunks.
  std::vector<size_t> bounds;
  bounds.push_back(0);
  const size_t want_chunks = std::max<size_t>(1, pool->num_threads() * 4);
  const size_t approx = std::max<size_t>(1, text.size() / want_chunks);
  for (size_t c = 1; c < want_chunks; ++c) {
    size_t pos = std::min(text.size(), c * approx);
    size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) break;
    if (nl + 1 > bounds.back() && nl + 1 < text.size()) {
      bounds.push_back(nl + 1);
    }
  }
  bounds.push_back(text.size());
  const size_t num_chunks = bounds.size() - 1;

  // Phase 1: per-chunk newline counts, so every chunk knows the 1-based
  // line number it starts at — error messages must match the serial path.
  std::vector<size_t> start_line(num_chunks + 1, 0);
  pool->ParallelFor(0, num_chunks, 1, [&](size_t c) {
    size_t newlines = 0;
    for (size_t pos = bounds[c]; pos < bounds[c + 1];) {
      size_t nl = text.find('\n', pos);
      if (nl == std::string_view::npos || nl >= bounds[c + 1]) break;
      ++newlines;
      pos = nl + 1;
    }
    start_line[c + 1] = newlines;
  });
  start_line[0] = 1;
  for (size_t c = 1; c <= num_chunks; ++c) start_line[c] += start_line[c - 1];

  // Phase 2: parse chunks concurrently. Each failure remembers its line so
  // the earliest one — what the serial loop would have hit first — wins.
  struct ChunkResult {
    EdgeList edges;
    Status status = Status::OK();
    size_t error_line = 0;
  };
  const uint64_t id_limit = IdLimit(options);
  std::vector<ChunkResult> chunks(num_chunks);
  pool->ParallelFor(
      0, num_chunks, 1,
      [&](size_t c) {
    ChunkResult& out = chunks[c];
    // Cross-thread spans: one per chunk, on whichever pool thread runs it.
    trace::TraceSpan chunk_span("etl.parse.chunk", "etl");
    chunk_span.SetAttribute("chunk", uint64_t{c});
    size_t line_no = start_line[c] - 1;
    size_t pos = bounds[c];
    while (pos < bounds[c + 1]) {
      if (line_no % 4096 == 0 && Cancelled(etl.cancel)) return;
      size_t nl = text.find('\n', pos);
      const size_t line_end =
          (nl == std::string_view::npos || nl > bounds[c + 1]) ? bounds[c + 1]
                                                               : nl;
      std::string_view line = text.substr(pos, line_end - pos);
      pos = line_end + 1;
      ++line_no;
      bool keep = false;
      Edge edge{0, 0};
      Status s = ParseEdgeLine(line, path, line_no, options, id_limit, &keep,
                               &edge);
      if (!s.ok()) {
        out.status = std::move(s);
        out.error_line = line_no;
        return;
      }
      if (keep) out.edges.Add(edge.src, edge.dst);
    }
      },
      etl.cancel);
  // A cancelled parse may have produced partial chunks; surface the token's
  // Status before the first-error scan so it wins over nothing.
  GLY_RETURN_NOT_OK(CheckCancel(etl.cancel));

  const ChunkResult* first_error = nullptr;
  for (const ChunkResult& chunk : chunks) {
    if (chunk.status.ok()) continue;
    if (first_error == nullptr || chunk.error_line < first_error->error_line) {
      first_error = &chunk;
    }
  }
  if (first_error != nullptr) return first_error->status;

  size_t total = 0;
  for (const ChunkResult& chunk : chunks) total += chunk.edges.num_edges();
  EdgeList edges;
  edges.Reserve(total);
  for (ChunkResult& chunk : chunks) edges.Append(chunk.edges);
  if (options.drop_duplicates) edges.Deduplicate();
  parse_span.SetAttribute("edges", uint64_t{edges.num_edges()});
  parse_span.SetAttribute("chunks", uint64_t{num_chunks});
  metrics::AddCounter("etl.edges_parsed", edges.num_edges());
  return edges;
}

Status WriteEdgeListBinary(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for write: " + path);
  out.write(kMagic, sizeof(kMagic));
  uint64_t nv = edges.num_vertices();
  uint64_t ne = edges.num_edges();
  out.write(reinterpret_cast<const char*>(&nv), sizeof(nv));
  out.write(reinterpret_cast<const char*>(&ne), sizeof(ne));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(ne * sizeof(Edge)));
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for read: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in " + path);
  }
  uint64_t nv = 0;
  uint64_t ne = 0;
  in.read(reinterpret_cast<char*>(&nv), sizeof(nv));
  in.read(reinterpret_cast<char*>(&ne), sizeof(ne));
  if (!in) return Status::IOError("truncated header in " + path);
  if (nv > kInvalidVertex) {
    return Status::InvalidArgument("vertex count too large in " + path);
  }
  // Sanity-check the declared edge count against the file size before
  // allocating: a corrupt header must not turn into a huge allocation.
  std::error_code ec;
  uint64_t file_size = std::filesystem::file_size(path, ec);
  constexpr uint64_t kHeaderBytes = sizeof(kMagic) + 2 * sizeof(uint64_t);
  if (ec || file_size < kHeaderBytes ||
      ne > (file_size - kHeaderBytes) / sizeof(Edge)) {
    return Status::InvalidArgument(StringPrintf(
        "%s: header declares %llu edges but file has %llu bytes",
        path.c_str(), (unsigned long long)ne, (unsigned long long)file_size));
  }
  EdgeList edges(static_cast<VertexId>(nv));
  edges.mutable_edges().resize(ne);
  in.read(reinterpret_cast<char*>(edges.mutable_edges().data()),
          static_cast<std::streamsize>(ne * sizeof(Edge)));
  if (!in) return Status::IOError("truncated edge data in " + path);
  for (const Edge& e : edges.edges()) {
    if (e.src >= nv || e.dst >= nv) {
      return Status::InvalidArgument("edge endpoint out of range in " + path);
    }
  }
  return edges;
}

Status WriteVertexFile(const EdgeList& edges, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    out << v << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status ApplyVertexFile(const std::string& path, EdgeList* edges) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for read: " + path);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    GLY_ASSIGN_OR_RETURN(uint64_t v, ParseUint64(sv));
    if (v >= kInvalidVertex) {
      return Status::InvalidArgument(
          StringPrintf("%s:%zu: vertex id too large", path.c_str(), line_no));
    }
    edges->EnsureVertices(static_cast<VertexId>(v) + 1);
  }
  // Same mid-file-error discipline as the edge loader: EOF and a failed
  // read are different things.
  if (in.bad()) return Status::IOError("read failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix) {
  return ReadGraphalyticsDataset(prefix, EdgeListParseOptions{});
}

Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix,
                                         const EdgeListParseOptions& options) {
  return ReadGraphalyticsDataset(prefix, options, EtlOptions{});
}

Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix,
                                         const EdgeListParseOptions& options,
                                         const EtlOptions& etl) {
  GLY_ASSIGN_OR_RETURN(EdgeList edges,
                       ReadEdgeListText(prefix + ".e", options, etl));
  std::ifstream probe(prefix + ".v");
  if (probe) {
    probe.close();
    GLY_RETURN_NOT_OK(ApplyVertexFile(prefix + ".v", &edges));
  }
  return edges;
}

}  // namespace gly
