// Core graph identifier types shared across all modules.

#pragma once

#include <cstdint>
#include <limits>

namespace gly {

/// Dense vertex identifier in [0, num_vertices).
using VertexId = uint32_t;

/// Edge offset/index type (CSR offsets can exceed 2^32 on large graphs).
using EdgeIndex = uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel distance for unreachable vertices in traversal outputs.
inline constexpr int64_t kUnreachable = std::numeric_limits<int64_t>::max();

/// A directed edge (src -> dst).
struct Edge {
  VertexId src;
  VertexId dst;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};

}  // namespace gly
