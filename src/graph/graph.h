// Graph: immutable CSR (compressed sparse row) adjacency structure.
//
// This is the shared in-memory graph representation. Directed graphs carry
// both out- and in-adjacency; undirected graphs mirror every edge so that
// `OutNeighbors` returns the full neighborhood.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace gly {

/// Immutable CSR graph.
class Graph {
 public:
  Graph() = default;

  /// True if built from `GraphBuilder::Undirected` (edges mirrored).
  bool undirected() const { return undirected_; }

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }

  /// Number of *logical* edges: directed edge count, or undirected edge
  /// count (each mirrored pair counted once).
  uint64_t num_edges() const { return num_edges_; }

  /// Number of stored adjacency entries (== 2*num_edges for undirected).
  uint64_t num_adjacency_entries() const { return out_targets_.size(); }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_targets_.data() + in_offsets_[v],
            in_targets_.data() + in_offsets_[v + 1]};
  }

  uint64_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  uint64_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Degree for undirected analysis: out-degree (== full neighborhood for
  /// undirected graphs; for directed graphs callers usually want
  /// out+in separately).
  uint64_t Degree(VertexId v) const { return OutDegree(v); }

  /// Binary search for edge (src, dst) in the out-adjacency. O(log deg).
  bool HasEdge(VertexId src, VertexId dst) const;

  /// Estimated resident bytes of the CSR arrays.
  uint64_t MemoryBytes() const;

  /// Converts back to an edge list (one entry per logical edge).
  EdgeList ToEdgeList() const;

  /// Internal consistency check (sorted adjacency, offset monotonicity,
  /// in/out symmetry). Intended for tests.
  Status Validate() const;

 private:
  friend class GraphBuilder;

  bool undirected_ = false;
  uint64_t num_edges_ = 0;
  std::vector<EdgeIndex> out_offsets_;  // size num_vertices + 1
  std::vector<VertexId> out_targets_;
  std::vector<EdgeIndex> in_offsets_;
  std::vector<VertexId> in_targets_;
};

/// Builds CSR graphs from edge lists.
class GraphBuilder {
 public:
  /// Builds a directed graph. Duplicate edges and self-loops are kept unless
  /// `dedup` is true.
  static Result<Graph> Directed(const EdgeList& edges, bool dedup = true);

  /// Builds an undirected graph: each input edge (u,v) appears in both
  /// adjacency lists. Self-loops are dropped; duplicates (in either
  /// orientation) are merged.
  static Result<Graph> Undirected(const EdgeList& edges);
};

}  // namespace gly
