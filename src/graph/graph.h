// Graph: immutable CSR (compressed sparse row) adjacency structure.
//
// This is the shared in-memory graph representation. Directed graphs carry
// both out- and in-adjacency; undirected graphs mirror every edge so that
// `OutNeighbors` returns the full neighborhood.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/threadpool.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace gly {

/// Bijective vertex relabeling: `old_to_new[old] == new` and
/// `new_to_old[new] == old`.
struct VertexPermutation {
  std::vector<VertexId> old_to_new;
  std::vector<VertexId> new_to_old;
};

struct ReorderedGraph;

/// Immutable CSR graph.
class Graph {
 public:
  Graph() = default;

  /// True if built from `GraphBuilder::Undirected` (edges mirrored).
  bool undirected() const { return undirected_; }

  VertexId num_vertices() const {
    return static_cast<VertexId>(out_offsets_.empty()
                                     ? 0
                                     : out_offsets_.size() - 1);
  }

  /// Number of *logical* edges: directed edge count, or undirected edge
  /// count (each mirrored pair counted once).
  uint64_t num_edges() const { return num_edges_; }

  /// Number of stored adjacency entries (== 2*num_edges for undirected).
  uint64_t num_adjacency_entries() const { return out_targets_.size(); }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }

  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_targets_.data() + in_offsets_[v],
            in_targets_.data() + in_offsets_[v + 1]};
  }

  uint64_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  uint64_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Degree for undirected analysis: out-degree (== full neighborhood for
  /// undirected graphs; for directed graphs callers usually want
  /// out+in separately).
  uint64_t Degree(VertexId v) const { return OutDegree(v); }

  /// Binary search for edge (src, dst) in the out-adjacency. O(log deg).
  bool HasEdge(VertexId src, VertexId dst) const;

  /// Estimated resident bytes of the CSR arrays.
  uint64_t MemoryBytes() const;

  /// Converts back to an edge list (one entry per logical edge).
  EdgeList ToEdgeList() const;

  /// Internal consistency check (sorted adjacency, offset monotonicity,
  /// in/out symmetry). Intended for tests.
  Status Validate() const;

  /// Opt-in locality optimization: relabels vertices in out-degree
  /// descending order (ties by original id), so hubs cluster at the low
  /// ids that traversal kernels touch most. Returns the relabeled graph
  /// plus the permutation; algorithm outputs computed on the result must
  /// be mapped back through the permutation to speak original ids. Only
  /// meaningful for relabeling-invariant algorithms (STATS/BFS/CONN/PR);
  /// id-seeded ones (CD, EVO) change results under relabeling.
  /// Row relabeling parallelizes on `pool` when provided.
  ReorderedGraph ReorderByDegree(ThreadPool* pool = nullptr) const;

 private:
  friend class GraphBuilder;

  bool undirected_ = false;
  uint64_t num_edges_ = 0;
  std::vector<EdgeIndex> out_offsets_;  // size num_vertices + 1
  std::vector<VertexId> out_targets_;
  std::vector<EdgeIndex> in_offsets_;
  std::vector<VertexId> in_targets_;
};

/// See Graph::ReorderByDegree.
struct ReorderedGraph {
  Graph graph;
  VertexPermutation perm;
};

/// Vertex ids ordered by out-degree descending, ties by id ascending —
/// the shared ordering used by ReorderByDegree and the greedy
/// edge-balanced partitioner.
std::vector<VertexId> DegreeDescendingOrder(const Graph& graph);

/// CSR construction policy. `threads > 1` (or an external `pool`) selects
/// the parallel two-pass build: atomic degree counting, parallel prefix
/// sum, parallel scatter, then a deterministic per-vertex neighbor sort.
/// The parallel build is bit-identical to the serial one — same offsets,
/// same target arrays — at any thread count (the etl parity suite proves
/// it), so callers can pick threads purely on performance grounds.
struct CsrBuildOptions {
  bool dedup = true;           ///< Directed only: drop self-loops + dups
  size_t threads = 1;          ///< >1 = parallel build on a private pool
  ThreadPool* pool = nullptr;  ///< shared pool (overrides `threads`)
  /// Cooperative cancellation (null = unsupervised): the parallel build
  /// loops skip unstarted chunks and the build returns the token's Status.
  const CancelToken* cancel = nullptr;
};

/// Builds CSR graphs from edge lists.
class GraphBuilder {
 public:
  /// Builds a directed graph. Duplicate edges and self-loops are kept unless
  /// `dedup` is true.
  static Result<Graph> Directed(const EdgeList& edges, bool dedup = true);
  static Result<Graph> Directed(const EdgeList& edges,
                                const CsrBuildOptions& options);

  /// Builds an undirected graph: each input edge (u,v) appears in both
  /// adjacency lists. Self-loops are dropped; duplicates (in either
  /// orientation) are merged.
  static Result<Graph> Undirected(const EdgeList& edges);
  static Result<Graph> Undirected(const EdgeList& edges,
                                  const CsrBuildOptions& options);

 private:
  static Result<Graph> ParallelDirected(const EdgeList& edges, bool dedup,
                                        ThreadPool& pool,
                                        const CancelToken* cancel);
  static Result<Graph> ParallelUndirected(const EdgeList& edges,
                                          ThreadPool& pool,
                                          const CancelToken* cancel);
};

}  // namespace gly
