#include "graph/frontier.h"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace gly {

Frontier::Frontier(VertexId num_vertices, uint64_t dense_threshold)
    : num_vertices_(num_vertices), dense_threshold_(dense_threshold) {
  if (dense_threshold_ == 0) {
    dense_threshold_ = static_cast<uint64_t>(
        std::ceil(kDefaultDenseFraction * static_cast<double>(num_vertices)));
    if (dense_threshold_ == 0) dense_threshold_ = 1;
  }
}

void Frontier::Clear() {
  rep_ = Rep::kSparse;
  size_ = 0;
  sparse_.clear();
  bits_ = AtomicBitset();
}

void Frontier::Add(VertexId v) {
  if (rep_ == Rep::kSparse) {
    sparse_.push_back(v);
    ++size_;
    if (size_ > dense_threshold_) Densify();
    return;
  }
  if (bits_.TestAndSet(v)) ++size_;
}

bool Frontier::AddConcurrent(VertexId v) {
  // Requires Rep::kDense; the bitmap arbitrates duplicates and the size
  // counter is bumped only by the winning thread.
  if (!bits_.TestAndSet(v)) return false;
  std::atomic_ref<uint64_t>(size_).fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Frontier::Contains(VertexId v) const {
  if (rep_ == Rep::kDense) return bits_.Test(v);
  return std::find(sparse_.begin(), sparse_.end(), v) != sparse_.end();
}

void Frontier::Densify() {
  if (rep_ == Rep::kDense) return;
  bits_ = AtomicBitset(num_vertices_);
  for (VertexId v : sparse_) bits_.Set(v);
  size_ = bits_.Count();  // sparse queues may hold duplicates
  sparse_.clear();
  sparse_.shrink_to_fit();
  rep_ = Rep::kDense;
}

void Frontier::Sparsify() {
  if (rep_ == Rep::kSparse) return;
  sparse_.clear();
  sparse_.reserve(size_);
  bits_.ForEachSet(
      [this](size_t v) { sparse_.push_back(static_cast<VertexId>(v)); });
  size_ = sparse_.size();
  bits_ = AtomicBitset();
  rep_ = Rep::kSparse;
}

std::vector<VertexId> Frontier::ToSortedVertices() const {
  std::vector<VertexId> out;
  out.reserve(size_);
  ForEach([&out](VertexId v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void Frontier::RecountDense() {
  if (rep_ == Rep::kDense) size_ = bits_.Count();
}

void Frontier::swap(Frontier& other) {
  std::swap(num_vertices_, other.num_vertices_);
  std::swap(dense_threshold_, other.dense_threshold_);
  std::swap(rep_, other.rep_);
  std::swap(size_, other.size_);
  sparse_.swap(other.sparse_);
  std::swap(bits_, other.bits_);
}

}  // namespace gly
