// EdgeList: mutable edge container, the interchange format between the
// generators, the file loaders, and the CSR builder.

#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/types.h"

namespace gly {

/// A bag of directed edges plus a vertex-count bound.
///
/// Conventions: vertices are dense ids `[0, num_vertices)`. For undirected
/// graphs, store each edge once in either orientation and build the Graph
/// with `GraphBuilder::Undirected`; the builder mirrors edges.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Appends edge (src, dst); grows the vertex bound as needed.
  void Add(VertexId src, VertexId dst);

  /// Appends all edges of `other`.
  void Append(const EdgeList& other);

  void Reserve(size_t n) { edges_.reserve(n); }

  /// Removes self-loop edges (in place; preserves order).
  void DropSelfLoops();

  /// Removes duplicate edges (in place; sorts edges).
  void Deduplicate();

  /// Removes duplicate edges and self-loops (in place; sorts edges).
  void DeduplicateAndDropLoops();

  /// Grows the vertex bound (no-op if already >= n).
  void EnsureVertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  const Edge& operator[](size_t i) const { return edges_[i]; }

 private:
  std::vector<Edge> edges_;
  VertexId num_vertices_ = 0;
};

}  // namespace gly
