// Frontier: the active-vertex set of a traversal superstep, held either as
// a sparse queue (vector of vertex ids) or a dense bitmap (AtomicBitset),
// with automatic switching between the two.
//
// The paper's §2.1 access-locality choke point is exactly the tension this
// module resolves: a sparse queue is cache-friendly while the frontier is
// small, but once the frontier covers a sizeable fraction of the graph a
// dense bitmap is both smaller (1 bit/vertex) and the representation the
// bottom-up BFS step needs for O(1) membership tests. `Add` densifies
// automatically past `dense_threshold` vertices; `Sparsify`/`Densify`
// convert explicitly; round-tripping through either representation
// preserves the vertex set exactly (tests/frontier_test.cc).

#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "graph/types.h"

namespace gly {

class Frontier {
 public:
  enum class Rep { kSparse, kDense };

  /// Sparse vertices held before switching dense, as a fraction of the
  /// vertex count (GAP uses a similar fill-factor heuristic).
  static constexpr double kDefaultDenseFraction = 1.0 / 16.0;

  Frontier() = default;

  /// `dense_threshold`: sparse size above which Add() switches to the
  /// dense representation; 0 picks kDefaultDenseFraction * num_vertices.
  explicit Frontier(VertexId num_vertices, uint64_t dense_threshold = 0);

  VertexId num_vertices() const { return num_vertices_; }
  Rep rep() const { return rep_; }
  uint64_t dense_threshold() const { return dense_threshold_; }

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Empties the frontier (reverts to sparse).
  void Clear();

  /// Adds a vertex the caller knows is not yet present (single-threaded;
  /// deduplication is the traversal's visited-set job). May densify.
  void Add(VertexId v);

  /// Thread-safe insert; requires the dense representation (call
  /// Densify() before a parallel fill phase). Returns true iff `v` was
  /// newly added.
  bool AddConcurrent(VertexId v);

  /// Membership test: O(1) dense, O(size) sparse.
  bool Contains(VertexId v) const;

  /// Conversions (no-ops when already in the target representation).
  /// Sparsify emits vertices in ascending order.
  void Densify();
  void Sparsify();

  /// The sparse queue (requires Rep::kSparse). Insertion order.
  const std::vector<VertexId>& sparse_vertices() const { return sparse_; }

  /// The dense bitmap (requires Rep::kDense).
  const AtomicBitset& bits() const { return bits_; }

  /// The vertex set in ascending order, from either representation.
  std::vector<VertexId> ToSortedVertices() const;

  /// Calls `fn(v)` per vertex: insertion order when sparse, ascending
  /// when dense.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    if (rep_ == Rep::kSparse) {
      for (VertexId v : sparse_) fn(v);
    } else {
      bits_.ForEachSet([&fn](size_t v) { fn(static_cast<VertexId>(v)); });
    }
  }

  /// Recomputes size() after a parallel AddConcurrent fill that bypassed
  /// the counter via bits() writes. AddConcurrent maintains the count
  /// itself; this is for callers that wrote the bitmap directly.
  void RecountDense();

  void swap(Frontier& other);

 private:
  VertexId num_vertices_ = 0;
  uint64_t dense_threshold_ = 0;
  Rep rep_ = Rep::kSparse;
  uint64_t size_ = 0;  // maintained by Add/AddConcurrent/conversions
  std::vector<VertexId> sparse_;
  AtomicBitset bits_;
};

}  // namespace gly
