// Graph I/O: the Graphalytics dataset interchange formats.
//
// Text format (".e" edge files, as used by LDBC Graphalytics): one edge per
// line, `src dst`, '#'-prefixed comment lines allowed. A companion ".v"
// vertex file (one vertex id per line) is optional; when absent the vertex
// set is inferred from edge endpoints.
//
// Binary format: a compact little-endian dump used for the preconfigured
// dataset cache ("a database for Datasets, which includes preconfigured
// graphs ready to be used").

#pragma once

#include <string>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/threadpool.h"
#include "graph/edge_list.h"

namespace gly {

/// Policy for text-edge-file parsing. Malformed input — truncated lines,
/// non-numeric tokens, ids that overflow VertexId — is always rejected
/// with a `file:line:` prefixed error; the options control cleanup of
/// well-formed but messy input (real-world edge dumps routinely carry
/// self-loops and repeated edges).
struct EdgeListParseOptions {
  bool drop_self_loops = false;  ///< discard edges with src == dst
  bool drop_duplicates = false;  ///< discard repeated (src, dst) pairs
  /// Reject vertex ids above this bound (inclusive). Defaults to the
  /// representable maximum; lower it to catch runaway ids early.
  uint64_t max_vertex_id = kInvalidVertex - 1;
};

/// Writes `edges` as a text edge file (one `src dst` line per edge).
Status WriteEdgeListText(const EdgeList& edges, const std::string& path);

/// Parallelism policy for text ETL. With `threads <= 1` and no pool the
/// loaders take the serial reference path; otherwise the file is split at
/// newline boundaries and the chunks parse concurrently on the pool. The
/// parallel path produces the exact edge order, vertex bound, and — for
/// malformed input — the exact `file:line:`-prefixed error message of the
/// serial path (the earliest offending line wins), so callers choose purely
/// on performance grounds.
struct EtlOptions {
  size_t threads = 1;          ///< >1 = parse on a private pool
  ThreadPool* pool = nullptr;  ///< shared pool (overrides `threads`)
  /// Cooperative cancellation (null = unsupervised): polled per parse
  /// chunk (parallel path) / every few thousand lines (serial path); a
  /// cancelled parse returns the token's Status.
  const CancelToken* cancel = nullptr;
};

/// Reads a text edge file.
Result<EdgeList> ReadEdgeListText(const std::string& path);
Result<EdgeList> ReadEdgeListText(const std::string& path,
                                  const EdgeListParseOptions& options);
Result<EdgeList> ReadEdgeListText(const std::string& path,
                                  const EdgeListParseOptions& options,
                                  const EtlOptions& etl);

/// Writes the compact binary format (magic, counts, raw edge array).
Status WriteEdgeListBinary(const EdgeList& edges, const std::string& path);

/// Reads the compact binary format.
Result<EdgeList> ReadEdgeListBinary(const std::string& path);

/// Writes the companion ".v" vertex file: one vertex id per line for every
/// vertex in [0, num_vertices). (LDBC Graphalytics datasets ship a ".v"
/// alongside each ".e" so isolated vertices are representable.)
Status WriteVertexFile(const EdgeList& edges, const std::string& path);

/// Reads a ".v" vertex file and raises `edges`' vertex bound to cover every
/// listed id, so vertices that appear only in the vertex file (isolated
/// vertices) are part of the graph.
Status ApplyVertexFile(const std::string& path, EdgeList* edges);

/// Loads a Graphalytics dataset: `<prefix>.e` (required) plus
/// `<prefix>.v` (optional). The edge file honours `etl` (the vertex file
/// is a tiny id list and always reads serially).
Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix);
Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix,
                                         const EdgeListParseOptions& options);
Result<EdgeList> ReadGraphalyticsDataset(const std::string& prefix,
                                         const EdgeListParseOptions& options,
                                         const EtlOptions& etl);

}  // namespace gly
