#include "graphdb/store.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/macros.h"
#include "common/metrics.h"
#include "common/perf_counters.h"
#include "common/trace.h"

namespace gly::graphdb {

namespace fs = std::filesystem;

namespace {

struct NodeRecord {
  uint64_t first_rel = kNilRecord;
  uint64_t first_prop = kNilRecord;
};

struct RelRecord {
  uint32_t src = 0;
  uint32_t dst = 0;
  uint64_t src_next = kNilRecord;
  uint64_t dst_next = kNilRecord;
  uint64_t in_use = 0;
};

struct PropRecord {
  uint32_t key_id = 0;
  uint32_t pad = 0;
  int64_t value = 0;
  uint64_t next = kNilRecord;
};

struct MetaRecord {
  uint64_t node_count = 0;
  uint64_t rel_count = 0;
  uint64_t prop_count = 0;
  uint64_t rel_deleted = 0;
};

static_assert(sizeof(NodeRecord) == 16);
static_assert(sizeof(RelRecord) == 32);
static_assert(sizeof(PropRecord) == 24);

}  // namespace

Result<std::unique_ptr<GraphStore>> GraphStore::Open(
    const StoreConfig& config) {
  if (config.directory.empty()) {
    return Status::InvalidArgument("StoreConfig.directory is required");
  }
  std::error_code ec;
  fs::create_directories(config.directory, ec);
  if (ec) {
    return Status::IOError("cannot create store dir: " + config.directory);
  }
  auto store = std::unique_ptr<GraphStore>(new GraphStore());
  store->cache_ = std::make_unique<PageCache>(config.page_cache_bytes,
                                              config.page_cache_shards);
  GLY_ASSIGN_OR_RETURN(store->nodes_file_,
                       store->cache_->OpenFile(config.directory + "/nodes.db"));
  GLY_ASSIGN_OR_RETURN(store->rels_file_,
                       store->cache_->OpenFile(config.directory + "/rels.db"));
  GLY_ASSIGN_OR_RETURN(store->props_file_,
                       store->cache_->OpenFile(config.directory + "/props.db"));
  GLY_ASSIGN_OR_RETURN(store->meta_file_,
                       store->cache_->OpenFile(config.directory + "/meta.db"));
  GLY_ASSIGN_OR_RETURN(Wal wal, Wal::Open(config.directory + "/wal.log"));
  store->wal_ = std::make_unique<Wal>(std::move(wal));
  GLY_RETURN_NOT_OK(store->Recover());
  GLY_RETURN_NOT_OK(store->LoadCounts());
  return store;
}

Status GraphStore::Recover() {
  trace::TraceSpan recover_span("graphdb.wal.recover", "graphdb");
  perf::SpanCounters recover_counters(&recover_span);
  GLY_ASSIGN_OR_RETURN(WalRecovery recovery, wal_->Recover());
  recover_span.SetAttribute("entries", uint64_t{recovery.entries.size()});
  recover_span.SetAttribute("truncated_bytes", recovery.truncated_bytes);
  metrics::AddCounter("graphdb.wal.entries_recovered",
                      recovery.entries.size());
  if (recovery.truncated_bytes > 0) {
    GLY_LOG_WARN << "wal: truncated torn tail of " << recovery.truncated_bytes
                 << " bytes after " << recovery.entries.size()
                 << " valid entries";
  }
  for (const auto& changes : recovery.entries) {
    for (const WalChange& c : changes) {
      GLY_RETURN_NOT_OK(
          cache_->Write(c.file_id, c.offset, c.bytes.data(), c.bytes.size()));
    }
  }
  wal_entries_recovered_ = recovery.entries.size();
  wal_bytes_truncated_ = recovery.truncated_bytes;
  return Status::OK();
}

Status GraphStore::LoadCounts() {
  MetaRecord meta;
  GLY_RETURN_NOT_OK(cache_->Read(meta_file_, 0, &meta, sizeof(meta)));
  node_count_ = meta.node_count;
  rel_count_ = meta.rel_count;
  prop_count_ = meta.prop_count;
  rel_deleted_ = meta.rel_deleted;
  return Status::OK();
}

Status GraphStore::SaveCounts() {
  MetaRecord meta{node_count_, rel_count_, prop_count_, rel_deleted_};
  return cache_->Write(meta_file_, 0, &meta, sizeof(meta));
}

Status GraphStore::BulkImport(const EdgeList& edges,
                              const CancelToken* cancel) {
  if (node_count_ != 0 || rel_count_ != 0) {
    return Status::InvalidArgument("BulkImport requires an empty store");
  }
  trace::TraceSpan import_span("graphdb.bulk_import", "graphdb");
  perf::SpanCounters import_counters(&import_span);
  import_span.SetAttribute("edges", edges.num_edges());
  // Bulk path bypasses the WAL (like neo4j-admin import) and checkpoints at
  // the end.
  constexpr size_t kCancelBatch = 4096;
  const VertexId n = edges.num_vertices();
  std::vector<NodeRecord> nodes(n);
  for (size_t i = 0; i < edges.num_edges(); ++i) {
    if (i % kCancelBatch == 0) {
      GLY_RETURN_NOT_OK(CheckCancel(cancel));
      if (cancel != nullptr) cancel->Heartbeat();
    }
    const Edge& e = edges.edges()[i];
    uint64_t rel_id = i;
    RelRecord rel;
    rel.src = e.src;
    rel.dst = e.dst;
    rel.in_use = 1;
    rel.src_next = nodes[e.src].first_rel;
    nodes[e.src].first_rel = rel_id;
    if (e.dst != e.src) {
      rel.dst_next = nodes[e.dst].first_rel;
      nodes[e.dst].first_rel = rel_id;
    }
    GLY_RETURN_NOT_OK(cache_->Write(rels_file_, rel_id * kRelRecordSize, &rel,
                                    sizeof(rel)));
  }
  for (VertexId v = 0; v < n; ++v) {
    if (v % kCancelBatch == 0) GLY_RETURN_NOT_OK(CheckCancel(cancel));
    GLY_RETURN_NOT_OK(cache_->Write(nodes_file_, uint64_t{v} * kNodeRecordSize,
                                    &nodes[v], sizeof(NodeRecord)));
  }
  node_count_ = n;
  rel_count_ = edges.num_edges();
  if (cancel != nullptr) cancel->Heartbeat();
  GLY_RETURN_NOT_OK(SaveCounts());
  return Checkpoint();
}

Result<uint64_t> GraphStore::FirstRelationship(VertexId node) {
  if (node >= node_count_) {
    return Status::InvalidArgument("node out of range");
  }
  NodeRecord rec;
  GLY_RETURN_NOT_OK(cache_->Read(nodes_file_, uint64_t{node} * kNodeRecordSize,
                                 &rec, sizeof(rec)));
  return rec.first_rel;
}

Result<RelView> GraphStore::ReadRelationship(uint64_t rel_id, VertexId node) {
  RelRecord rec;
  GLY_RETURN_NOT_OK(cache_->Read(rels_file_, rel_id * kRelRecordSize, &rec,
                                 sizeof(rec)));
  if (rec.in_use == 0) {
    return Status::NotFound("relationship " + std::to_string(rel_id));
  }
  RelView view;
  view.rel_id = rel_id;
  if (rec.src == node) {
    view.other = rec.dst;
    view.outgoing = true;
    view.next = rec.src_next;
  } else if (rec.dst == node) {
    view.other = rec.src;
    view.outgoing = false;
    view.next = rec.dst_next;
  } else {
    return Status::Internal("relationship chain corruption at rel " +
                            std::to_string(rel_id));
  }
  return view;
}

Status GraphStore::CollectNeighbors(VertexId node, bool outgoing_only,
                                    std::vector<VertexId>* out) {
  out->clear();
  GLY_ASSIGN_OR_RETURN(uint64_t rel, FirstRelationship(node));
  while (rel != kNilRecord) {
    GLY_ASSIGN_OR_RETURN(RelView view, ReadRelationship(rel, node));
    if (!outgoing_only || view.outgoing) out->push_back(view.other);
    rel = view.next;
  }
  return Status::OK();
}

// ------------------------------------------------------------ transactions

GraphStore::Transaction GraphStore::Begin() {
  Transaction tx(this);
  tx.new_node_count_ = node_count_;
  tx.new_rel_count_ = rel_count_;
  tx.new_prop_count_ = prop_count_;
  tx.new_rel_deleted_ = rel_deleted_;
  return tx;
}

Result<std::string> GraphStore::Transaction::ReadShadow(uint32_t file_id,
                                                        uint64_t offset,
                                                        size_t len) {
  std::string data(len, '\0');
  GLY_RETURN_NOT_OK(store_->cache_->Read(file_id, offset, data.data(), len));
  // Apply buffered overlapping writes (last wins).
  for (const WalChange& c : changes_) {
    if (c.file_id != file_id) continue;
    uint64_t lo = std::max(offset, c.offset);
    uint64_t hi = std::min(offset + len, c.offset + c.bytes.size());
    if (lo >= hi) continue;
    std::memcpy(data.data() + (lo - offset), c.bytes.data() + (lo - c.offset),
                hi - lo);
  }
  return data;
}

void GraphStore::Transaction::WriteShadow(uint32_t file_id, uint64_t offset,
                                          const void* data, size_t len) {
  WalChange c;
  c.file_id = file_id;
  c.offset = offset;
  c.bytes.assign(static_cast<const char*>(data),
                 static_cast<const char*>(data) + len);
  changes_.push_back(std::move(c));
}

Result<VertexId> GraphStore::Transaction::CreateNode() {
  VertexId id = static_cast<VertexId>(new_node_count_++);
  NodeRecord rec;
  WriteShadow(store_->nodes_file_, uint64_t{id} * kNodeRecordSize, &rec,
              sizeof(rec));
  return id;
}

Result<uint64_t> GraphStore::Transaction::CreateRelationship(VertexId src,
                                                             VertexId dst) {
  if (src >= new_node_count_ || dst >= new_node_count_) {
    return Status::InvalidArgument("relationship endpoint does not exist");
  }
  uint64_t rel_id = new_rel_count_++;
  GLY_ASSIGN_OR_RETURN(
      std::string src_node_bytes,
      ReadShadow(store_->nodes_file_, uint64_t{src} * kNodeRecordSize,
                 sizeof(NodeRecord)));
  GLY_ASSIGN_OR_RETURN(
      std::string dst_node_bytes,
      ReadShadow(store_->nodes_file_, uint64_t{dst} * kNodeRecordSize,
                 sizeof(NodeRecord)));
  NodeRecord src_node;
  NodeRecord dst_node;
  std::memcpy(&src_node, src_node_bytes.data(), sizeof(src_node));
  std::memcpy(&dst_node, dst_node_bytes.data(), sizeof(dst_node));

  RelRecord rel;
  rel.src = src;
  rel.dst = dst;
  rel.in_use = 1;
  rel.src_next = src_node.first_rel;
  src_node.first_rel = rel_id;
  if (dst != src) {
    rel.dst_next = dst_node.first_rel;
    dst_node.first_rel = rel_id;
  }
  WriteShadow(store_->rels_file_, rel_id * kRelRecordSize, &rel, sizeof(rel));
  WriteShadow(store_->nodes_file_, uint64_t{src} * kNodeRecordSize, &src_node,
              sizeof(src_node));
  if (dst != src) {
    WriteShadow(store_->nodes_file_, uint64_t{dst} * kNodeRecordSize,
                &dst_node, sizeof(dst_node));
  }
  return rel_id;
}

Status GraphStore::Transaction::SetNodeProperty(VertexId node, uint32_t key_id,
                                                int64_t value) {
  if (node >= new_node_count_) {
    return Status::InvalidArgument("node does not exist");
  }
  GLY_ASSIGN_OR_RETURN(
      std::string node_bytes,
      ReadShadow(store_->nodes_file_, uint64_t{node} * kNodeRecordSize,
                 sizeof(NodeRecord)));
  NodeRecord rec;
  std::memcpy(&rec, node_bytes.data(), sizeof(rec));

  // Update in place if the key exists on the chain.
  uint64_t prop = rec.first_prop;
  while (prop != kNilRecord) {
    GLY_ASSIGN_OR_RETURN(std::string prop_bytes,
                         ReadShadow(store_->props_file_,
                                    prop * kPropRecordSize, sizeof(PropRecord)));
    PropRecord pr;
    std::memcpy(&pr, prop_bytes.data(), sizeof(pr));
    if (pr.key_id == key_id) {
      pr.value = value;
      WriteShadow(store_->props_file_, prop * kPropRecordSize, &pr,
                  sizeof(pr));
      return Status::OK();
    }
    prop = pr.next;
  }
  // Prepend a new property record.
  uint64_t prop_id = new_prop_count_++;
  PropRecord pr;
  pr.key_id = key_id;
  pr.value = value;
  pr.next = rec.first_prop;
  rec.first_prop = prop_id;
  WriteShadow(store_->props_file_, prop_id * kPropRecordSize, &pr, sizeof(pr));
  WriteShadow(store_->nodes_file_, uint64_t{node} * kNodeRecordSize, &rec,
              sizeof(rec));
  return Status::OK();
}

Status GraphStore::Transaction::UnlinkFromChain(VertexId node,
                                                uint64_t rel_id) {
  GLY_ASSIGN_OR_RETURN(
      std::string node_bytes,
      ReadShadow(store_->nodes_file_, uint64_t{node} * kNodeRecordSize,
                 sizeof(NodeRecord)));
  NodeRecord node_rec;
  std::memcpy(&node_rec, node_bytes.data(), sizeof(node_rec));

  auto next_of = [node](const RelRecord& rec) {
    return rec.src == node ? rec.src_next : rec.dst_next;
  };

  GLY_ASSIGN_OR_RETURN(std::string victim_bytes,
                       ReadShadow(store_->rels_file_, rel_id * kRelRecordSize,
                                  sizeof(RelRecord)));
  RelRecord victim;
  std::memcpy(&victim, victim_bytes.data(), sizeof(victim));
  const uint64_t successor = next_of(victim);

  if (node_rec.first_rel == rel_id) {
    node_rec.first_rel = successor;
    WriteShadow(store_->nodes_file_, uint64_t{node} * kNodeRecordSize,
                &node_rec, sizeof(node_rec));
    return Status::OK();
  }
  // Walk the (singly linked) chain to the predecessor.
  uint64_t cursor = node_rec.first_rel;
  while (cursor != kNilRecord) {
    GLY_ASSIGN_OR_RETURN(std::string cur_bytes,
                         ReadShadow(store_->rels_file_,
                                    cursor * kRelRecordSize,
                                    sizeof(RelRecord)));
    RelRecord cur;
    std::memcpy(&cur, cur_bytes.data(), sizeof(cur));
    uint64_t next = next_of(cur);
    if (next == rel_id) {
      if (cur.src == node) {
        cur.src_next = successor;
      } else {
        cur.dst_next = successor;
      }
      WriteShadow(store_->rels_file_, cursor * kRelRecordSize, &cur,
                  sizeof(cur));
      return Status::OK();
    }
    cursor = next;
  }
  return Status::Internal("relationship " + std::to_string(rel_id) +
                          " not on chain of node " + std::to_string(node));
}

Status GraphStore::Transaction::DeleteRelationship(uint64_t rel_id) {
  if (rel_id >= new_rel_count_) {
    return Status::NotFound("relationship " + std::to_string(rel_id));
  }
  GLY_ASSIGN_OR_RETURN(std::string rel_bytes,
                       ReadShadow(store_->rels_file_, rel_id * kRelRecordSize,
                                  sizeof(RelRecord)));
  RelRecord rel;
  std::memcpy(&rel, rel_bytes.data(), sizeof(rel));
  if (rel.in_use == 0) {
    return Status::NotFound("relationship " + std::to_string(rel_id) +
                            " already deleted");
  }
  GLY_RETURN_NOT_OK(UnlinkFromChain(rel.src, rel_id));
  if (rel.dst != rel.src) {
    GLY_RETURN_NOT_OK(UnlinkFromChain(rel.dst, rel_id));
  }
  rel.in_use = 0;
  rel.src_next = kNilRecord;
  rel.dst_next = kNilRecord;
  WriteShadow(store_->rels_file_, rel_id * kRelRecordSize, &rel, sizeof(rel));
  ++new_rel_deleted_;
  return Status::OK();
}

Status GraphStore::Transaction::Commit() {
  if (committed_) return Status::InvalidArgument("transaction already committed");
  // Counts ride in the same WAL entry so recovery restores them atomically.
  MetaRecord meta{new_node_count_, new_rel_count_, new_prop_count_,
                  new_rel_deleted_};
  WriteShadow(store_->meta_file_, 0, &meta, sizeof(meta));
  GLY_RETURN_NOT_OK(store_->wal_->Append(changes_));
  for (const WalChange& c : changes_) {
    GLY_RETURN_NOT_OK(store_->cache_->Write(c.file_id, c.offset,
                                            c.bytes.data(), c.bytes.size()));
  }
  store_->node_count_ = new_node_count_;
  store_->rel_count_ = new_rel_count_;
  store_->prop_count_ = new_prop_count_;
  store_->rel_deleted_ = new_rel_deleted_;
  committed_ = true;
  return Status::OK();
}

Result<int64_t> GraphStore::GetNodeProperty(VertexId node, uint32_t key_id) {
  if (node >= node_count_) {
    return Status::InvalidArgument("node out of range");
  }
  NodeRecord rec;
  GLY_RETURN_NOT_OK(cache_->Read(nodes_file_, uint64_t{node} * kNodeRecordSize,
                                 &rec, sizeof(rec)));
  uint64_t prop = rec.first_prop;
  while (prop != kNilRecord) {
    PropRecord pr;
    GLY_RETURN_NOT_OK(cache_->Read(props_file_, prop * kPropRecordSize, &pr,
                                   sizeof(pr)));
    if (pr.key_id == key_id) return pr.value;
    prop = pr.next;
  }
  return Status::NotFound("property " + std::to_string(key_id) + " on node " +
                          std::to_string(node));
}

Status GraphStore::Checkpoint() {
  GLY_RETURN_NOT_OK(cache_->Flush());
  return wal_->Truncate();
}

uint64_t GraphStore::store_bytes() const {
  return node_count_ * kNodeRecordSize + rel_count_ * kRelRecordSize +
         prop_count_ * kPropRecordSize;
}

}  // namespace gly::graphdb
