#include "graphdb/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/macros.h"
#include "common/metrics.h"

namespace gly::graphdb {

namespace {

// Scans the log at `path`, decoding complete CRC-valid entries into
// `recovery->entries` and reporting the valid/torn byte split. The length
// field of each frame is bounded by the remaining file size before any
// allocation, so a corrupt header cannot trigger a huge allocation.
Status ScanLog(const std::string& path, WalRecovery* recovery) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat(" + path + "): " + std::strerror(errno));
  }
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  uint64_t pos = 0;
  for (;;) {
    uint32_t header[2];
    ssize_t n = ::pread(fd, header, sizeof(header), static_cast<off_t>(pos));
    if (n == 0) break;                        // clean EOF
    if (n != sizeof(header)) break;           // torn frame header
    uint32_t len = header[0];
    uint32_t crc = header[1];
    if (pos + 8 + len > file_size) break;     // length points past EOF
    std::vector<char> payload(len);
    n = ::pread(fd, payload.data(), len, static_cast<off_t>(pos + 8));
    if (n != static_cast<ssize_t>(len)) break;  // torn payload
    if (Crc32c(payload.data(), len) != crc) break;  // corrupt tail
    // Decode changes.
    std::vector<WalChange> changes;
    size_t p = 0;
    bool ok = true;
    while (p < payload.size()) {
      if (p + 16 > payload.size()) {
        ok = false;
        break;
      }
      WalChange c;
      std::memcpy(&c.file_id, payload.data() + p, 4);
      std::memcpy(&c.offset, payload.data() + p + 4, 8);
      uint32_t size;
      std::memcpy(&size, payload.data() + p + 12, 4);
      p += 16;
      if (p + size > payload.size()) {
        ok = false;
        break;
      }
      c.bytes.assign(payload.data() + p, payload.data() + p + size);
      p += size;
      changes.push_back(std::move(c));
    }
    if (!ok) break;
    recovery->entries.push_back(std::move(changes));
    pos += 8 + len;
  }
  ::close(fd);
  recovery->valid_bytes = pos;
  recovery->truncated_bytes = file_size - pos;
  return Status::OK();
}

}  // namespace

Result<Wal> Wal::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  return Wal(fd, path);
}

Wal::Wal(Wal&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)), entries_(other.entries_) {
  other.fd_ = -1;
}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    entries_ = other.entries_;
    other.fd_ = -1;
  }
  return *this;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::Append(const std::vector<WalChange>& changes) {
  GLY_FAULT_POINT("graphdb.wal.append");
  std::string payload;
  for (const WalChange& c : changes) {
    uint32_t size = static_cast<uint32_t>(c.bytes.size());
    payload.append(reinterpret_cast<const char*>(&c.file_id),
                   sizeof(c.file_id));
    payload.append(reinterpret_cast<const char*>(&c.offset), sizeof(c.offset));
    payload.append(reinterpret_cast<const char*>(&size), sizeof(size));
    payload.append(c.bytes.data(), c.bytes.size());
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  uint32_t crc = Crc32c(payload.data(), payload.size());
  std::string frame;
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  frame += payload;
  ssize_t n = ::write(fd_, frame.data(), frame.size());
  if (n != static_cast<ssize_t>(frame.size())) {
    return Status::IOError("wal write failed: " + path_);
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync failed: " + path_);
  }
  ++entries_;
  // Counters, not spans: appends are per-transaction and would swamp a
  // trace; the aggregate volume is what matters.
  metrics::AddCounter("graphdb.wal.appends");
  metrics::AddCounter("graphdb.wal.append_bytes", frame.size());
  return Status::OK();
}

Result<std::vector<std::vector<WalChange>>> Wal::ReadAll() const {
  WalRecovery recovery;
  GLY_RETURN_NOT_OK(ScanLog(path_, &recovery));
  return std::move(recovery.entries);
}

Result<WalRecovery> Wal::Recover() {
  WalRecovery recovery;
  GLY_RETURN_NOT_OK(ScanLog(path_, &recovery));
  if (recovery.truncated_bytes > 0) {
    // Drop the torn tail so post-recovery appends extend the valid prefix
    // instead of hiding behind garbage that every future scan stops at.
    if (::ftruncate(fd_, static_cast<off_t>(recovery.valid_bytes)) != 0) {
      return Status::IOError("wal truncate failed: " + path_);
    }
    if (::fsync(fd_) != 0) {
      return Status::IOError("wal fsync failed: " + path_);
    }
  }
  return recovery;
}

Status Wal::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("wal truncate failed: " + path_);
  }
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync failed: " + path_);
  }
  return Status::OK();
}

}  // namespace gly::graphdb
