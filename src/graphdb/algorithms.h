// The five Graphalytics algorithms on the graph database — the "Neo4j"
// platform.
//
// Algorithms run embedded against the record store through the traversal
// framework and neighbor reads, with per-algorithm state in memory — the
// way the Graphalytics Neo4j driver implements them. The platform is
// single-machine: it pays no distribution overhead (fastest on graphs it
// can hold) but refuses workloads whose store + state exceed its memory
// budget, reproducing "Neo4j is not able to process graphs larger than the
// memory of a single machine".

#pragma once

#include <string>

#include "graphdb/store.h"
#include "ref/algorithms.h"

namespace gly::graphdb {

/// Platform configuration.
struct DbPlatformConfig {
  std::string store_dir;                     ///< store location (required)
  uint64_t page_cache_bytes = 256ULL << 20;  ///< cache sizing
  uint32_t page_cache_shards = 0;            ///< lock stripes; 0 = auto
  uint64_t memory_budget_bytes = 0;          ///< 0 = unlimited
};

/// Per-run statistics.
struct DbRunStats {
  uint64_t relationships_expanded = 0;
  PageCacheStats cache;
};

/// Imports `graph` into a fresh store under `config.store_dir` and runs
/// `kind`. Fails with ResourceExhausted when the graph does not fit the
/// memory budget.
Result<AlgorithmOutput> RunAlgorithm(const DbPlatformConfig& config,
                                     const Graph& graph, AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     DbRunStats* stats_out = nullptr);

/// Variant reusing an already-imported store (the import cost is ETL,
/// which the paper's runtime metric excludes).
Result<AlgorithmOutput> RunAlgorithmOnStore(GraphStore* store,
                                            bool graph_is_undirected,
                                            uint64_t memory_budget_bytes,
                                            AlgorithmKind kind,
                                            const AlgorithmParams& params,
                                            DbRunStats* stats_out = nullptr);

}  // namespace gly::graphdb
