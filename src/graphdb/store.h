// GraphStore: Neo4j-style record storage.
//
// Layout mirrors Neo4j's native store:
//   nodes.db — fixed 16-byte node records:
//       [first_rel: u64][first_prop: u64]
//   rels.db  — fixed 32-byte relationship records:
//       [src: u32][dst: u32][src_next: u64][dst_next: u64][in_use+pad: u64]
//   props.db — fixed 24-byte property records:
//       [key_id: u32][pad: u32][value: i64][next: u64]
// Relationship records are shared by both endpoints and threaded onto two
// intrusive linked lists (src chain and dst chain), as in Neo4j's
// relationship chains; traversing a node's relationships walks its chain,
// choosing the next pointer by which endpoint matches. Deletion unlinks the
// record from both chains and tombstones it (in_use = 0); record ids are
// never reused.
//
// All access goes through the PageCache. Mutations go through Transactions
// whose commits are WAL-journaled (see wal.h); Recover() replays the log.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "graph/edge_list.h"
#include "graphdb/page_cache.h"
#include "graphdb/wal.h"

namespace gly::graphdb {

/// Sentinel for "end of chain".
inline constexpr uint64_t kNilRecord = ~0ULL;

/// One relationship as seen from a node during traversal.
struct RelView {
  uint64_t rel_id = kNilRecord;
  VertexId other = 0;      ///< the opposite endpoint
  bool outgoing = false;   ///< true if this node is the src
  uint64_t next = kNilRecord;  ///< next relationship of this node
};

/// Store configuration.
struct StoreConfig {
  std::string directory;            ///< store files live here (required)
  uint64_t page_cache_bytes = 64ULL << 20;
  /// Lock-striped page cache segments; 0 = auto (min(8, capacity pages)).
  /// The README's `graphdb.pagecache_shards` knob.
  uint32_t page_cache_shards = 0;
};

/// The embedded graph database.
class GraphStore {
 public:
  /// Opens (creating if empty) a store and replays the WAL.
  static Result<std::unique_ptr<GraphStore>> Open(const StoreConfig& config);

  /// Bulk-imports an edge list into an empty store (the Graphalytics
  /// "dataset loading method"). Nodes are [0, num_vertices). Each input
  /// edge becomes one relationship record. `cancel` (optional) is polled
  /// every few thousand records; a cancelled import returns the token's
  /// Status and leaves the store un-checkpointed (discard it).
  Status BulkImport(const EdgeList& edges, const CancelToken* cancel = nullptr);

  uint64_t node_count() const { return node_count_; }
  /// Live relationships (created minus deleted).
  uint64_t relationship_count() const { return rel_count_ - rel_deleted_; }

  /// First relationship id of `node`'s chain (kNilRecord if none).
  Result<uint64_t> FirstRelationship(VertexId node);

  /// Decodes relationship `rel_id` from `node`'s perspective.
  Result<RelView> ReadRelationship(uint64_t rel_id, VertexId node);

  /// Collects all neighbors of `node` (`outgoing_only` filters direction).
  Status CollectNeighbors(VertexId node, bool outgoing_only,
                          std::vector<VertexId>* out);

  // ------------------------------------------------------------ mutations

  /// A write transaction. Mutations are buffered; Commit() journals them to
  /// the WAL and applies them to the store. Destroying an uncommitted
  /// transaction discards it (rollback).
  class Transaction {
   public:
    /// Creates a node; returns its id.
    Result<VertexId> CreateNode();

    /// Creates a relationship between existing nodes; returns its id.
    Result<uint64_t> CreateRelationship(VertexId src, VertexId dst);

    /// Sets an integer property on a node.
    Status SetNodeProperty(VertexId node, uint32_t key_id, int64_t value);

    /// Deletes a relationship: unlinks it from both endpoints' chains and
    /// tombstones the record (ids are not reused). NotFound if already
    /// deleted or never created.
    Status DeleteRelationship(uint64_t rel_id);

    /// Journals and applies all buffered changes.
    Status Commit();

   private:
    friend class GraphStore;
    explicit Transaction(GraphStore* store) : store_(store) {}

    // Buffered page images: read-your-writes within the transaction.
    Result<std::string> ReadShadow(uint32_t file_id, uint64_t offset,
                                   size_t len);
    void WriteShadow(uint32_t file_id, uint64_t offset, const void* data,
                     size_t len);

    /// Unlinks `rel_id` from `node`'s relationship chain.
    Status UnlinkFromChain(VertexId node, uint64_t rel_id);

    GraphStore* store_;
    std::vector<WalChange> changes_;
    uint64_t new_node_count_;
    uint64_t new_rel_count_;
    uint64_t new_prop_count_;
    uint64_t new_rel_deleted_;
    bool committed_ = false;
  };

  /// Begins a write transaction (single-writer store).
  Transaction Begin();

  /// Reads an integer node property; NotFound if absent.
  Result<int64_t> GetNodeProperty(VertexId node, uint32_t key_id);

  /// Flushes the page cache and truncates the WAL.
  Status Checkpoint();

  /// Aggregated snapshot across the cache's shards.
  PageCacheStats cache_stats() const { return cache_->stats(); }

  /// WAL entries replayed when this store was opened.
  uint64_t wal_entries_recovered() const { return wal_entries_recovered_; }
  /// Torn WAL tail bytes truncated when this store was opened.
  uint64_t wal_bytes_truncated() const { return wal_bytes_truncated_; }

  /// Total store bytes (the "graph larger than memory" check).
  uint64_t store_bytes() const;

 private:
  GraphStore() = default;

  Status LoadCounts();
  Status SaveCounts();
  Status Recover();

  static constexpr size_t kNodeRecordSize = 16;
  static constexpr size_t kRelRecordSize = 32;
  static constexpr size_t kPropRecordSize = 24;

  std::unique_ptr<PageCache> cache_;
  std::unique_ptr<Wal> wal_;
  uint32_t nodes_file_ = 0;
  uint32_t rels_file_ = 0;
  uint32_t props_file_ = 0;
  uint32_t meta_file_ = 0;
  uint64_t node_count_ = 0;
  uint64_t rel_count_ = 0;   // allocation high-water mark (ids not reused)
  uint64_t prop_count_ = 0;
  uint64_t rel_deleted_ = 0;
  uint64_t wal_entries_recovered_ = 0;
  uint64_t wal_bytes_truncated_ = 0;
};

}  // namespace gly::graphdb
