// PageCache: fixed-size-page buffer cache over store files.
//
// The graphdb substrate mirrors Neo4j's storage architecture: record files
// accessed through a page cache. The cache capacity is the knob that makes
// the paper's observation mechanistic — "Neo4j is not able to process
// graphs larger than the memory of a single machine, but its performance is
// generally the best" — a store that fits is all cache hits; one that does
// not thrashes or (in the harness's strict mode) refuses the workload.

#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace gly::graphdb {

/// Page size in bytes (Neo4j uses 8 KiB).
inline constexpr size_t kPageSize = 8192;

/// Cache statistics.
struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
};

/// LRU page cache shared by all store files of one database.
/// Not thread-safe: the store serializes access (single-writer database,
/// like the benchmarked embedded Neo4j).
class PageCache {
 public:
  /// `capacity_bytes` is rounded down to whole pages (minimum 1 page).
  explicit PageCache(uint64_t capacity_bytes);
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Registers a backing file; returns its file id. Creates the file if
  /// missing.
  Result<uint32_t> OpenFile(const std::string& path);

  /// Reads `len` bytes at `offset` of file `file_id` into `out` through the
  /// cache. Reads beyond EOF yield zero bytes (fresh pages).
  Status Read(uint32_t file_id, uint64_t offset, void* out, size_t len);

  /// Writes `len` bytes at `offset` through the cache (marks pages dirty).
  Status Write(uint32_t file_id, uint64_t offset, const void* data,
               size_t len);

  /// Writes all dirty pages back and fsyncs the files.
  Status Flush();

  const PageCacheStats& stats() const { return stats_; }
  size_t capacity_pages() const { return capacity_pages_; }
  size_t resident_pages() const { return pages_.size(); }

 private:
  struct PageKey {
    uint32_t file_id;
    uint64_t page_no;
    bool operator==(const PageKey& o) const {
      return file_id == o.file_id && page_no == o.page_no;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.file_id) << 48) ^
                                   k.page_no);
    }
  };
  struct Page {
    std::vector<char> data;
    bool dirty = false;
    std::list<PageKey>::iterator lru_it;
  };

  /// Returns the resident page, faulting it in (and evicting) as needed.
  Result<Page*> GetPage(uint32_t file_id, uint64_t page_no);
  Status EvictOne();
  Status WritebackPage(const PageKey& key, Page& page);

  size_t capacity_pages_;
  std::vector<int> fds_;            // file descriptors by file id
  std::vector<std::string> paths_;  // for error messages
  std::unordered_map<PageKey, Page, PageKeyHash> pages_;
  std::list<PageKey> lru_;  // front = most recent
  PageCacheStats stats_;
};

}  // namespace gly::graphdb
