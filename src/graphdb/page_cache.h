// PageCache: fixed-size-page buffer cache over store files.
//
// The graphdb substrate mirrors Neo4j's storage architecture: record files
// accessed through a page cache. The cache capacity is the knob that makes
// the paper's observation mechanistic — "Neo4j is not able to process
// graphs larger than the memory of a single machine, but its performance is
// generally the best" — a store that fits is all cache hits; one that does
// not thrashes or (in the harness's strict mode) refuses the workload.
//
// The cache is split into N lock-striped shards (DESIGN.md §13): pages hash
// to a shard by (file, page), each shard owns `capacity / N` frames guarded
// by its own mutex and evicted with a second-chance clock sweep. Lookups on
// different shards never contend; a try_lock miss on a shard is counted in
// `shard_contention` (surfaced as `graphdb.pagecache.shard_contention`).
// WAL and checkpoint semantics are unchanged: Flush() still writes back
// every dirty page and fsyncs before the WAL truncates.

#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace gly::graphdb {

/// Page size in bytes (Neo4j uses 8 KiB).
inline constexpr size_t kPageSize = 8192;

/// Cache statistics (aggregated across shards).
struct PageCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  /// Times a lookup found its shard's mutex held by another thread.
  uint64_t shard_contention = 0;
};

/// Sharded clock page cache shared by all store files of one database.
/// Concurrent readers on distinct shards proceed in parallel; the store's
/// single-writer discipline (like the benchmarked embedded Neo4j) still
/// serializes mutations above this layer.
class PageCache {
 public:
  /// `capacity_bytes` is rounded down to whole pages (minimum 1 page).
  /// `shards` = 0 picks min(8, capacity_pages); an explicit count is
  /// clamped so every shard owns at least one frame and the summed frame
  /// budget never exceeds the page capacity.
  explicit PageCache(uint64_t capacity_bytes, uint32_t shards = 0);
  ~PageCache();

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Registers a backing file; returns its file id. Creates the file if
  /// missing.
  Result<uint32_t> OpenFile(const std::string& path);

  /// Reads `len` bytes at `offset` of file `file_id` into `out` through the
  /// cache. Reads beyond EOF yield zero bytes (fresh pages).
  Status Read(uint32_t file_id, uint64_t offset, void* out, size_t len);

  /// Writes `len` bytes at `offset` through the cache (marks pages dirty).
  Status Write(uint32_t file_id, uint64_t offset, const void* data,
               size_t len);

  /// Writes all dirty pages back and fsyncs the files.
  Status Flush();

  /// Aggregated snapshot across shards (locks each shard briefly).
  PageCacheStats stats() const;
  size_t capacity_pages() const { return capacity_pages_; }
  /// Resident pages summed across shards.
  size_t resident_pages() const;
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }

 private:
  struct PageKey {
    uint32_t file_id;
    uint64_t page_no;
    bool operator==(const PageKey& o) const {
      return file_id == o.file_id && page_no == o.page_no;
    }
  };
  struct PageKeyHash {
    size_t operator()(const PageKey& k) const {
      return std::hash<uint64_t>()((static_cast<uint64_t>(k.file_id) << 48) ^
                                   k.page_no);
    }
  };
  /// One cache frame: a page image plus the clock's second-chance bit.
  struct Frame {
    PageKey key{0, 0};
    std::vector<char> data;
    bool in_use = false;
    bool dirty = false;
    bool referenced = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Frame> frames;                            // fixed frame pool
    std::vector<size_t> free_slots;                       // never-used frames
    std::unordered_map<PageKey, size_t, PageKeyHash> index;  // key -> frame
    size_t clock_hand = 0;
    size_t resident = 0;
    PageCacheStats stats;  // guarded by mu (except shard_contention)
    mutable std::atomic<uint64_t> contention{0};
  };

  Shard& ShardFor(const PageKey& key) {
    return shards_[PageKeyHash()(key) % shards_.size()];
  }

  /// Locks `shard`, counting a blocked acquisition into its contention tally.
  static std::unique_lock<std::mutex> LockShard(const Shard& shard);

  /// Returns the frame holding (file_id, page_no), faulting it in — and
  /// running the clock sweep — as needed. Caller holds the shard lock.
  Result<Frame*> GetFrame(Shard& shard, uint32_t file_id, uint64_t page_no);
  Status EvictClock(Shard& shard, size_t* slot_out);
  Status WritebackFrame(Frame& frame, PageCacheStats* stats);

  size_t capacity_pages_;
  std::vector<Shard> shards_;
  mutable std::mutex files_mu_;
  std::vector<int> fds_;            // file descriptors by file id
  std::vector<std::string> paths_;  // for error messages
};

}  // namespace gly::graphdb
