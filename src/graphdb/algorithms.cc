#include "graphdb/algorithms.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "common/macros.h"
#include "common/memory_budget.h"
#include "common/metrics.h"
#include "graphdb/traversal.h"

namespace gly::graphdb {

namespace {

// Cancellation poll batching: record-chain walks are cheap per step, so the
// algorithms poll every this-many units of work (vertices, visits).
constexpr uint64_t kCancelBatch = 1024;

// Fetches a node's algorithm-facing neighborhood: full neighborhood for
// undirected graphs, out-neighbors for directed; ascending order to match
// the CSR platforms.
Status FetchSortedNeighbors(GraphStore* store, VertexId node, bool undirected,
                            std::vector<VertexId>* out) {
  GLY_RETURN_NOT_OK(
      store->CollectNeighbors(node, /*outgoing_only=*/!undirected, out));
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

Result<AlgorithmOutput> RunBfs(GraphStore* store, bool undirected,
                               const BfsParams& params,
                               const CancelToken* cancel, DbRunStats* stats) {
  AlgorithmOutput out;
  out.vertex_values.assign(store->node_count(), kUnreachable);
  if (params.source >= store->node_count()) return out;
  TraversalStats tstats;
  // The visitor aborts the traversal (returns false) when cancelled; the
  // poll after Traverse converts the partial walk into the token's Status.
  uint64_t visits = 0;
  GLY_RETURN_NOT_OK(Traverse(
      store, params.source, TraversalOrder::kBreadthFirst,
      undirected ? Expand::kBoth : Expand::kOutgoing,
      [&out, &visits, cancel](VertexId node, uint32_t depth) {
        if (++visits % kCancelBatch == 0 && Cancelled(cancel)) return false;
        out.vertex_values[node] = depth;
        return true;
      },
      &tstats));
  GLY_RETURN_NOT_OK(CheckCancel(cancel));
  if (cancel != nullptr) cancel->Heartbeat();
  out.traversed_edges = tstats.relationships_expanded;
  if (stats != nullptr) stats->relationships_expanded = tstats.relationships_expanded;
  return out;
}

Result<AlgorithmOutput> RunConn(GraphStore* store, const CancelToken* cancel,
                                DbRunStats* stats) {
  // Connectivity is over the undirected structure; the store's chains give
  // both directions with Expand::kBoth.
  AlgorithmOutput out;
  const VertexId n = static_cast<VertexId>(store->node_count());
  out.vertex_values.assign(n, -1);
  uint64_t expanded = 0;
  for (VertexId start = 0; start < n; ++start) {
    if (out.vertex_values[start] != -1) continue;
    GLY_RETURN_NOT_OK(CheckCancel(cancel));
    if (cancel != nullptr) cancel->Heartbeat();
    TraversalStats tstats;
    GLY_RETURN_NOT_OK(Traverse(
        store, start, TraversalOrder::kBreadthFirst, Expand::kBoth,
        [&out, start](VertexId node, uint32_t) {
          out.vertex_values[node] = start;
          return true;
        },
        &tstats));
    expanded += tstats.relationships_expanded;
  }
  out.traversed_edges = expanded;
  if (stats != nullptr) stats->relationships_expanded = expanded;
  return out;
}

Result<AlgorithmOutput> RunCd(GraphStore* store, bool undirected,
                              const CdParams& params,
                              const CancelToken* cancel, DbRunStats* stats) {
  const VertexId n = static_cast<VertexId>(store->node_count());
  std::vector<int64_t> labels(n);
  std::vector<double> scores(n, 1.0);
  std::iota(labels.begin(), labels.end(), 0);
  std::vector<int64_t> new_labels(n);
  std::vector<double> new_scores(n);
  std::vector<VertexId> nbrs;
  uint64_t expanded = 0;
  for (uint32_t iter = 0; iter < params.max_iterations; ++iter) {
    for (VertexId v = 0; v < n; ++v) {
      if (v % kCancelBatch == 0) GLY_RETURN_NOT_OK(CheckCancel(cancel));
      GLY_RETURN_NOT_OK(FetchSortedNeighbors(store, v, undirected, &nbrs));
      expanded += nbrs.size();
      if (nbrs.empty()) {
        new_labels[v] = labels[v];
        new_scores[v] = scores[v];
        continue;
      }
      std::vector<LabelScore> incoming;
      incoming.reserve(nbrs.size());
      for (VertexId w : nbrs) {
        incoming.push_back(LabelScore{labels[w], scores[w]});
      }
      LabelScore adopted = CdAdoptLabel(incoming, params.hop_attenuation);
      new_labels[v] = adopted.label;
      new_scores[v] = adopted.score;
    }
    labels.swap(new_labels);
    scores.swap(new_scores);
    if (cancel != nullptr) cancel->Heartbeat();
  }
  AlgorithmOutput out;
  out.vertex_values = std::move(labels);
  out.traversed_edges = expanded;
  if (stats != nullptr) stats->relationships_expanded = expanded;
  return out;
}

Result<AlgorithmOutput> RunStatsAlgorithm(GraphStore* store, bool undirected,
                                          uint64_t num_logical_edges,
                                          const CancelToken* cancel,
                                          DbRunStats* stats) {
  const VertexId n = static_cast<VertexId>(store->node_count());
  double sum = 0.0;
  std::vector<VertexId> nbrs;
  std::vector<VertexId> their;
  uint64_t expanded = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (v % kCancelBatch == 0) {
      GLY_RETURN_NOT_OK(CheckCancel(cancel));
      if (cancel != nullptr) cancel->Heartbeat();
    }
    GLY_RETURN_NOT_OK(FetchSortedNeighbors(store, v, undirected, &nbrs));
    expanded += nbrs.size();
    uint64_t deg = nbrs.size();
    if (deg < 2) continue;
    uint64_t links = 0;
    for (VertexId u : nbrs) {
      GLY_RETURN_NOT_OK(FetchSortedNeighbors(store, u, undirected, &their));
      expanded += their.size();
      size_t a = 0;
      size_t b = 0;
      while (a < their.size() && b < nbrs.size()) {
        if (their[a] < nbrs[b]) {
          ++a;
        } else if (their[a] > nbrs[b]) {
          ++b;
        } else {
          ++links;
          ++a;
          ++b;
        }
      }
    }
    sum += static_cast<double>(links) /
           (static_cast<double>(deg) * static_cast<double>(deg - 1));
  }
  AlgorithmOutput out;
  out.stats.num_vertices = n;
  out.stats.num_edges = num_logical_edges;
  out.stats.mean_local_clustering =
      n == 0 ? 0.0 : sum / static_cast<double>(n);
  out.traversed_edges = expanded;
  if (stats != nullptr) stats->relationships_expanded = expanded;
  return out;
}

Result<AlgorithmOutput> RunEvo(GraphStore* store, bool undirected,
                               const EvoParams& params,
                               const CancelToken* cancel, DbRunStats* stats) {
  const VertexId n = static_cast<VertexId>(store->node_count());
  AlgorithmOutput out;
  uint64_t expanded = 0;
  auto fetch = [store, undirected,
                &expanded](VertexId v) -> std::vector<VertexId> {
    std::vector<VertexId> nbrs;
    Status s = FetchSortedNeighbors(store, v, undirected, &nbrs);
    s.Check();  // I/O failure mid-burn is unrecoverable for determinism
    expanded += nbrs.size();
    return nbrs;
  };
  for (uint32_t i = 0; i < params.num_new_vertices; ++i) {
    GLY_RETURN_NOT_OK(CheckCancel(cancel));
    if (cancel != nullptr) cancel->Heartbeat();
    Rng rng(DeriveSeed(params.seed, 0xA0000000ULL + i));
    VertexId ambassador = static_cast<VertexId>(rng.NextBounded(n));
    std::vector<VertexId> burned =
        ForestFireBurnWithFetch(n, fetch, ambassador, params, i);
    for (VertexId b : burned) out.new_edges.Add(n + i, b);
  }
  out.new_edges.EnsureVertices(n + params.num_new_vertices);
  out.traversed_edges = expanded;
  if (stats != nullptr) stats->relationships_expanded = expanded;
  return out;
}

Result<AlgorithmOutput> RunPr(GraphStore* store, bool undirected,
                              const PrParams& params,
                              const CancelToken* cancel, DbRunStats* stats) {
  const VertexId n = static_cast<VertexId>(store->node_count());
  AlgorithmOutput out;
  if (n == 0) return out;
  const double base = (1.0 - params.damping) / static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n);
  uint64_t expanded = 0;
  // Precompute out-degrees (one pass over the relationship chains).
  std::vector<uint32_t> out_degree(n, 0);
  std::vector<VertexId> nbrs;
  for (VertexId v = 0; v < n; ++v) {
    GLY_RETURN_NOT_OK(FetchSortedNeighbors(store, v, undirected, &nbrs));
    out_degree[v] = static_cast<uint32_t>(nbrs.size());
  }
  for (uint32_t iter = 0; iter < params.iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    // Scatter: each vertex pushes rank/deg to its (out-)neighbors, which
    // is equivalent to the reference's in-neighbor gather.
    for (VertexId v = 0; v < n; ++v) {
      if (v % kCancelBatch == 0) GLY_RETURN_NOT_OK(CheckCancel(cancel));
      if (out_degree[v] == 0) continue;
      GLY_RETURN_NOT_OK(FetchSortedNeighbors(store, v, undirected, &nbrs));
      expanded += nbrs.size();
      double contribution = rank[v] / static_cast<double>(out_degree[v]);
      for (VertexId w : nbrs) next[w] += contribution;
    }
    for (VertexId v = 0; v < n; ++v) {
      rank[v] = base + params.damping * next[v];
    }
    if (cancel != nullptr) cancel->Heartbeat();
  }
  out.vertex_scores = std::move(rank);
  out.traversed_edges = expanded;
  if (stats != nullptr) stats->relationships_expanded = expanded;
  return out;
}

}  // namespace

Result<AlgorithmOutput> RunAlgorithmOnStore(GraphStore* store,
                                            bool graph_is_undirected,
                                            uint64_t memory_budget_bytes,
                                            AlgorithmKind kind,
                                            const AlgorithmParams& params,
                                            DbRunStats* stats_out) {
  // The Neo4j constraint: store plus per-vertex algorithm state must fit in
  // memory.
  MemoryBudget budget(memory_budget_bytes);
  GLY_RETURN_NOT_OK(
      budget.Charge(store->store_bytes(), "graph store (page cache)")
          .WithPrefix("graphdb"));
  GLY_RETURN_NOT_OK(
      budget.Charge(store->node_count() * 24, "algorithm state")
          .WithPrefix("graphdb"));

  DbRunStats stats;
  const CancelToken* cancel = params.cancel;
  GLY_RETURN_NOT_OK(CheckCancel(cancel));
  Result<AlgorithmOutput> result = Status::Internal("unreached");
  switch (kind) {
    case AlgorithmKind::kBfs:
      result = RunBfs(store, graph_is_undirected, params.bfs, cancel, &stats);
      break;
    case AlgorithmKind::kConn:
      result = RunConn(store, cancel, &stats);
      break;
    case AlgorithmKind::kCd:
      result = RunCd(store, graph_is_undirected, params.cd, cancel, &stats);
      break;
    case AlgorithmKind::kStats: {
      uint64_t logical = graph_is_undirected ? store->relationship_count()
                                             : store->relationship_count();
      result = RunStatsAlgorithm(store, graph_is_undirected, logical, cancel,
                                 &stats);
      break;
    }
    case AlgorithmKind::kEvo:
      result = RunEvo(store, graph_is_undirected, params.evo, cancel, &stats);
      break;
    case AlgorithmKind::kPr:
      result = RunPr(store, graph_is_undirected, params.pr, cancel, &stats);
      break;
  }
  if (!result.ok()) return result.status();
  stats.cache = store->cache_stats();
  metrics::SetGauge("graphdb.pagecache.shard_contention",
                    static_cast<double>(stats.cache.shard_contention));
  if (stats_out != nullptr) *stats_out = stats;
  return result;
}

Result<AlgorithmOutput> RunAlgorithm(const DbPlatformConfig& config,
                                     const Graph& graph, AlgorithmKind kind,
                                     const AlgorithmParams& params,
                                     DbRunStats* stats_out) {
  StoreConfig store_config;
  store_config.directory = config.store_dir;
  store_config.page_cache_bytes = config.page_cache_bytes;
  store_config.page_cache_shards = config.page_cache_shards;
  GLY_ASSIGN_OR_RETURN(std::unique_ptr<GraphStore> store,
                       GraphStore::Open(store_config));
  GLY_RETURN_NOT_OK(store->BulkImport(graph.ToEdgeList(), params.cancel));
  return RunAlgorithmOnStore(store.get(), graph.undirected(),
                             config.memory_budget_bytes, kind, params,
                             stats_out);
}

}  // namespace gly::graphdb
