#include "graphdb/page_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/macros.h"

namespace gly::graphdb {

namespace {

size_t ShardCountFor(size_t capacity_pages, uint32_t requested) {
  size_t count = requested == 0 ? std::min<size_t>(8, capacity_pages)
                                : static_cast<size_t>(requested);
  // Every shard owns at least one frame, and the summed frame budget never
  // exceeds the page capacity (a 4-page cache stays 4 pages however many
  // shards were asked for).
  return std::clamp<size_t>(count, 1, capacity_pages);
}

}  // namespace

PageCache::PageCache(uint64_t capacity_bytes, uint32_t shards)
    : capacity_pages_(std::max<uint64_t>(1, capacity_bytes / kPageSize)),
      shards_(ShardCountFor(capacity_pages_, shards)) {
  const size_t base = capacity_pages_ / shards_.size();
  const size_t extra = capacity_pages_ % shards_.size();
  for (size_t i = 0; i < shards_.size(); ++i) {
    const size_t cap = base + (i < extra ? 1 : 0);
    Shard& shard = shards_[i];
    shard.frames.resize(cap);
    shard.free_slots.reserve(cap);
    // Descending so the first faults fill slot 0 upward.
    for (size_t j = cap; j-- > 0;) shard.free_slots.push_back(j);
  }
}

PageCache::~PageCache() {
  // Best effort: write back and close.
  Status s = Flush();
  (void)s;
  std::lock_guard<std::mutex> lock(files_mu_);
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Result<uint32_t> PageCache::OpenFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(files_mu_);
  fds_.push_back(fd);
  paths_.push_back(path);
  return static_cast<uint32_t>(fds_.size() - 1);
}

std::unique_lock<std::mutex> PageCache::LockShard(const Shard& shard) {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    shard.contention.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

Result<PageCache::Frame*> PageCache::GetFrame(Shard& shard, uint32_t file_id,
                                              uint64_t page_no) {
  const PageKey key{file_id, page_no};
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    ++shard.stats.hits;
    Frame& frame = shard.frames[it->second];
    frame.referenced = true;  // second chance for the clock sweep
    return &frame;
  }
  ++shard.stats.misses;
  // Injected transient read error / slow disk on the miss path.
  GLY_FAULT_POINT("graphdb.pagecache.read");
  size_t slot;
  if (!shard.free_slots.empty()) {
    slot = shard.free_slots.back();
    shard.free_slots.pop_back();
  } else {
    GLY_RETURN_NOT_OK(EvictClock(shard, &slot));
  }
  Frame& frame = shard.frames[slot];
  frame.data.assign(kPageSize, 0);  // reuses the evicted frame's buffer
  int fd;
  std::string path;
  {
    std::lock_guard<std::mutex> files_lock(files_mu_);
    fd = fds_[file_id];
    path = paths_[file_id];
  }
  ssize_t n = ::pread(fd, frame.data.data(), kPageSize,
                      static_cast<off_t>(page_no * kPageSize));
  if (n < 0) {
    shard.free_slots.push_back(slot);
    return Status::IOError("pread(" + path + "): " + std::strerror(errno));
  }
  frame.key = key;
  frame.in_use = true;
  frame.dirty = false;
  frame.referenced = true;
  shard.index.emplace(key, slot);
  ++shard.resident;
  return &frame;
}

Status PageCache::EvictClock(Shard& shard, size_t* slot_out) {
  const size_t n = shard.frames.size();
  if (shard.resident == 0) {
    return Status::Internal("page cache shard empty during evict");
  }
  // One full sweep clears every second-chance bit, so two sweeps always
  // find a victim.
  for (size_t step = 0; step < 2 * n + 1; ++step) {
    const size_t slot = shard.clock_hand;
    shard.clock_hand = (shard.clock_hand + 1) % n;
    Frame& frame = shard.frames[slot];
    if (!frame.in_use) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) {
      GLY_RETURN_NOT_OK(WritebackFrame(frame, &shard.stats));
    }
    shard.index.erase(frame.key);
    frame.in_use = false;
    --shard.resident;
    ++shard.stats.evictions;
    *slot_out = slot;
    return Status::OK();
  }
  return Status::Internal("page cache clock sweep found no victim");
}

Status PageCache::WritebackFrame(Frame& frame, PageCacheStats* stats) {
  GLY_FAULT_POINT("graphdb.pagecache.writeback");
  int fd;
  std::string path;
  {
    std::lock_guard<std::mutex> files_lock(files_mu_);
    fd = fds_[frame.key.file_id];
    path = paths_[frame.key.file_id];
  }
  ssize_t n = ::pwrite(fd, frame.data.data(), kPageSize,
                       static_cast<off_t>(frame.key.page_no * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + path + "): " + std::strerror(errno));
  }
  frame.dirty = false;
  ++stats->writebacks;
  return Status::OK();
}

Status PageCache::Read(uint32_t file_id, uint64_t offset, void* out,
                       size_t len) {
  char* dst = static_cast<char*>(out);
  while (len > 0) {
    uint64_t page_no = offset / kPageSize;
    size_t in_page = static_cast<size_t>(offset % kPageSize);
    size_t chunk = std::min(len, kPageSize - in_page);
    Shard& shard = ShardFor(PageKey{file_id, page_no});
    {
      std::unique_lock<std::mutex> lock = LockShard(shard);
      GLY_ASSIGN_OR_RETURN(Frame * frame, GetFrame(shard, file_id, page_no));
      std::memcpy(dst, frame->data.data() + in_page, chunk);
    }
    dst += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status PageCache::Write(uint32_t file_id, uint64_t offset, const void* data,
                        size_t len) {
  const char* src = static_cast<const char*>(data);
  while (len > 0) {
    uint64_t page_no = offset / kPageSize;
    size_t in_page = static_cast<size_t>(offset % kPageSize);
    size_t chunk = std::min(len, kPageSize - in_page);
    Shard& shard = ShardFor(PageKey{file_id, page_no});
    {
      std::unique_lock<std::mutex> lock = LockShard(shard);
      GLY_ASSIGN_OR_RETURN(Frame * frame, GetFrame(shard, file_id, page_no));
      std::memcpy(frame->data.data() + in_page, src, chunk);
      frame->dirty = true;
    }
    src += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status PageCache::Flush() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    for (Frame& frame : shard.frames) {
      if (frame.in_use && frame.dirty) {
        GLY_RETURN_NOT_OK(WritebackFrame(frame, &shard.stats));
      }
    }
  }
  std::lock_guard<std::mutex> lock(files_mu_);
  for (int fd : fds_) {
    if (fd >= 0 && ::fsync(fd) != 0) {
      return Status::IOError(std::string("fsync: ") + std::strerror(errno));
    }
  }
  return Status::OK();
}

PageCacheStats PageCache::stats() const {
  PageCacheStats out;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    out.hits += shard.stats.hits;
    out.misses += shard.stats.misses;
    out.evictions += shard.stats.evictions;
    out.writebacks += shard.stats.writebacks;
    out.shard_contention +=
        shard.contention.load(std::memory_order_relaxed);
  }
  return out;
}

size_t PageCache::resident_pages() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::unique_lock<std::mutex> lock = LockShard(shard);
    total += shard.resident;
  }
  return total;
}

}  // namespace gly::graphdb
