#include "graphdb/page_cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/macros.h"

namespace gly::graphdb {

PageCache::PageCache(uint64_t capacity_bytes)
    : capacity_pages_(std::max<uint64_t>(1, capacity_bytes / kPageSize)) {}

PageCache::~PageCache() {
  // Best effort: write back and close.
  Status s = Flush();
  (void)s;
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Result<uint32_t> PageCache::OpenFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IOError("open(" + path + "): " + std::strerror(errno));
  }
  fds_.push_back(fd);
  paths_.push_back(path);
  return static_cast<uint32_t>(fds_.size() - 1);
}

Result<PageCache::Page*> PageCache::GetPage(uint32_t file_id,
                                            uint64_t page_no) {
  PageKey key{file_id, page_no};
  auto it = pages_.find(key);
  if (it != pages_.end()) {
    ++stats_.hits;
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return &it->second;
  }
  ++stats_.misses;
  // Injected transient read error / slow disk on the miss path.
  GLY_FAULT_POINT("graphdb.pagecache.read");
  while (pages_.size() >= capacity_pages_) {
    GLY_RETURN_NOT_OK(EvictOne());
  }
  Page page;
  page.data.assign(kPageSize, 0);
  ssize_t n = ::pread(fds_[file_id], page.data.data(), kPageSize,
                      static_cast<off_t>(page_no * kPageSize));
  if (n < 0) {
    return Status::IOError("pread(" + paths_[file_id] +
                           "): " + std::strerror(errno));
  }
  lru_.push_front(key);
  auto [ins, ok] = pages_.emplace(key, std::move(page));
  (void)ok;
  ins->second.lru_it = lru_.begin();
  return &ins->second;
}

Status PageCache::EvictOne() {
  if (lru_.empty()) return Status::Internal("page cache empty during evict");
  PageKey victim = lru_.back();
  auto it = pages_.find(victim);
  if (it->second.dirty) {
    GLY_RETURN_NOT_OK(WritebackPage(victim, it->second));
  }
  lru_.pop_back();
  pages_.erase(it);
  ++stats_.evictions;
  return Status::OK();
}

Status PageCache::WritebackPage(const PageKey& key, Page& page) {
  GLY_FAULT_POINT("graphdb.pagecache.writeback");
  ssize_t n = ::pwrite(fds_[key.file_id], page.data.data(), kPageSize,
                       static_cast<off_t>(key.page_no * kPageSize));
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("pwrite(" + paths_[key.file_id] +
                           "): " + std::strerror(errno));
  }
  page.dirty = false;
  ++stats_.writebacks;
  return Status::OK();
}

Status PageCache::Read(uint32_t file_id, uint64_t offset, void* out,
                       size_t len) {
  char* dst = static_cast<char*>(out);
  while (len > 0) {
    uint64_t page_no = offset / kPageSize;
    size_t in_page = static_cast<size_t>(offset % kPageSize);
    size_t chunk = std::min(len, kPageSize - in_page);
    GLY_ASSIGN_OR_RETURN(Page * page, GetPage(file_id, page_no));
    std::memcpy(dst, page->data.data() + in_page, chunk);
    dst += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status PageCache::Write(uint32_t file_id, uint64_t offset, const void* data,
                        size_t len) {
  const char* src = static_cast<const char*>(data);
  while (len > 0) {
    uint64_t page_no = offset / kPageSize;
    size_t in_page = static_cast<size_t>(offset % kPageSize);
    size_t chunk = std::min(len, kPageSize - in_page);
    GLY_ASSIGN_OR_RETURN(Page * page, GetPage(file_id, page_no));
    std::memcpy(page->data.data() + in_page, src, chunk);
    page->dirty = true;
    src += chunk;
    offset += chunk;
    len -= chunk;
  }
  return Status::OK();
}

Status PageCache::Flush() {
  for (auto& [key, page] : pages_) {
    if (page.dirty) {
      GLY_RETURN_NOT_OK(WritebackPage(key, page));
    }
  }
  for (int fd : fds_) {
    if (fd >= 0 && ::fsync(fd) != 0) {
      return Status::IOError(std::string("fsync: ") + std::strerror(errno));
    }
  }
  return Status::OK();
}

}  // namespace gly::graphdb
