#include "graphdb/traversal.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/macros.h"

namespace gly::graphdb {

Status Traverse(GraphStore* store, VertexId seed, TraversalOrder order,
                Expand expand,
                const std::function<bool(VertexId, uint32_t)>& visit,
                TraversalStats* stats_out) {
  if (seed >= store->node_count()) {
    return Status::InvalidArgument("seed node out of range");
  }
  TraversalStats stats;
  std::vector<uint8_t> seen(store->node_count(), 0);
  // Frontier of (node, depth); front-pop for BFS, back-pop for DFS.
  std::deque<std::pair<VertexId, uint32_t>> frontier;
  frontier.emplace_back(seed, 0);
  seen[seed] = 1;
  std::vector<VertexId> neighbors;
  while (!frontier.empty()) {
    auto [node, depth] = order == TraversalOrder::kBreadthFirst
                             ? frontier.front()
                             : frontier.back();
    if (order == TraversalOrder::kBreadthFirst) {
      frontier.pop_front();
    } else {
      frontier.pop_back();
    }
    ++stats.nodes_visited;
    stats.max_depth = std::max(stats.max_depth, depth);
    if (!visit(node, depth)) continue;  // pruned
    GLY_RETURN_NOT_OK(store->CollectNeighbors(
        node, expand == Expand::kOutgoing, &neighbors));
    stats.relationships_expanded += neighbors.size();
    for (VertexId w : neighbors) {
      if (!seen[w]) {
        seen[w] = 1;
        frontier.emplace_back(w, depth + 1);
      }
    }
  }
  if (stats_out != nullptr) *stats_out = stats;
  return Status::OK();
}

}  // namespace gly::graphdb
