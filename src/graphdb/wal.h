// Write-ahead log for the graph store.
//
// Commit protocol: a transaction's record mutations are serialized into one
// WAL entry, appended and fsynced *before* the mutations reach the page
// cache (write-ahead rule). On open, the store replays all complete entries
// beyond the last checkpoint, making commits crash-durable. A checkpoint
// flushes the page cache and truncates the log.
//
// Entry framing:  [len: u32][crc: u32][payload: len bytes]
// Payload:        sequence of [file_id: u32][offset: u64][size: u32][bytes]
//
// A crash can leave a torn tail: a partial frame, a frame whose CRC does
// not match, or a length field pointing past end-of-file. Recover() reads
// every complete entry and then truncates the log back to the last valid
// frame boundary, so that entries appended after recovery land contiguous
// with the valid prefix instead of being orphaned behind garbage.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/result.h"

namespace gly::graphdb {

using gly::Crc32c;  // historical home of the CRC; now in common/crc32.h

/// One mutation within a WAL entry.
struct WalChange {
  uint32_t file_id = 0;
  uint64_t offset = 0;
  std::vector<char> bytes;
};

/// Outcome of crash recovery over the log.
struct WalRecovery {
  std::vector<std::vector<WalChange>> entries;  ///< complete, CRC-valid
  uint64_t valid_bytes = 0;      ///< log prefix covered by `entries`
  uint64_t truncated_bytes = 0;  ///< torn tail removed (0 = clean log)
};

/// Append-only write-ahead log.
class Wal {
 public:
  /// Opens (creating if needed) the log at `path`.
  static Result<Wal> Open(const std::string& path);

  Wal(Wal&&) noexcept;
  Wal& operator=(Wal&&) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends one entry (a committed transaction) and fsyncs.
  Status Append(const std::vector<WalChange>& changes);

  /// Reads every complete entry from the start of the log. Torn tails
  /// (partial final entry, CRC mismatch) are ignored, as on crash. Does
  /// not modify the log; prefer Recover() when opening after a crash.
  Result<std::vector<std::vector<WalChange>>> ReadAll() const;

  /// Crash recovery: reads every complete entry, then truncates any torn
  /// tail back to the last valid frame boundary and fsyncs.
  Result<WalRecovery> Recover();

  /// Truncates the log (after a checkpoint).
  Status Truncate();

  uint64_t entries_appended() const { return entries_; }

 private:
  explicit Wal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
  uint64_t entries_ = 0;
};

}  // namespace gly::graphdb
