// Write-ahead log for the graph store.
//
// Commit protocol: a transaction's record mutations are serialized into one
// WAL entry, appended and fsynced *before* the mutations reach the page
// cache (write-ahead rule). On open, the store replays all complete entries
// beyond the last checkpoint, making commits crash-durable. A checkpoint
// flushes the page cache and truncates the log.
//
// Entry framing:  [len: u32][crc: u32][payload: len bytes]
// Payload:        sequence of [file_id: u32][offset: u64][size: u32][bytes]

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace gly::graphdb {

/// One mutation within a WAL entry.
struct WalChange {
  uint32_t file_id = 0;
  uint64_t offset = 0;
  std::vector<char> bytes;
};

/// Append-only write-ahead log.
class Wal {
 public:
  /// Opens (creating if needed) the log at `path`.
  static Result<Wal> Open(const std::string& path);

  Wal(Wal&&) noexcept;
  Wal& operator=(Wal&&) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Appends one entry (a committed transaction) and fsyncs.
  Status Append(const std::vector<WalChange>& changes);

  /// Reads every complete entry from the start of the log. Torn tails
  /// (partial final entry, CRC mismatch) are ignored, as on crash.
  Result<std::vector<std::vector<WalChange>>> ReadAll() const;

  /// Truncates the log (after a checkpoint).
  Status Truncate();

  uint64_t entries_appended() const { return entries_; }

 private:
  explicit Wal(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
  uint64_t entries_ = 0;
};

/// CRC32 (Castagnoli polynomial, bitwise) over a byte buffer.
uint32_t Crc32c(const void* data, size_t len);

}  // namespace gly::graphdb
