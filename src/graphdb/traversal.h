// Traversal framework over the GraphStore — the Neo4j Traversal-API analog.
//
// Visits nodes in breadth-first or depth-first order from a seed node,
// streaming (node, depth) pairs to a visitor; the expander selects which
// relationships to follow.

#pragma once

#include <functional>

#include "graphdb/store.h"

namespace gly::graphdb {

/// Traversal order.
enum class TraversalOrder { kBreadthFirst, kDepthFirst };

/// Which relationships to expand from a node.
enum class Expand { kOutgoing, kBoth };

/// Traversal statistics (drives the TEPS metric for this platform).
struct TraversalStats {
  uint64_t nodes_visited = 0;
  uint64_t relationships_expanded = 0;
  uint32_t max_depth = 0;
};

/// Runs a traversal from `seed`. `visit(node, depth)` is called once per
/// discovered node (including the seed at depth 0); returning false prunes
/// expansion below that node. Fails on store I/O errors.
Status Traverse(GraphStore* store, VertexId seed, TraversalOrder order,
                Expand expand,
                const std::function<bool(VertexId, uint32_t)>& visit,
                TraversalStats* stats_out = nullptr);

}  // namespace gly::graphdb
