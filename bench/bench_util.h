// Shared helpers for the experiment benches: dataset construction (the
// three Figure 4/5 graphs at reproducible reduced scale), banner output,
// and the machine-readable performance record layer (--json) consumed by
// scripts/bench_compare.py. See DESIGN.md §8 "Performance methodology" for
// the record schema and the regression-gate contract.
//
// Scale note: the paper's testbed is an 11-machine cluster processing
// Graph500 scale-23 (~134M edges); these benches run on one box, so every
// dataset is scaled down (see EXPERIMENTS.md). The *shapes* of the results
// — orderings, gaps, crossovers — are what the reproduction checks.

#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "graph/graph.h"
#include "harness/monitor.h"

namespace gly::bench {

// ------------------------------------------------------------ CLI options

/// Flags every bench binary understands. Unknown flags abort with usage so
/// a typo never silently produces an un-gated run.
struct BenchOptions {
  std::string json_path;       ///< --json <path>: write KernelRecords there
  uint32_t repeats = 5;        ///< --repeats <n>: timed measure runs
  uint32_t kernel_scale = 18;  ///< --kernel-scale <n>: R-MAT scale for duels
  bool kernels_only = false;   ///< --kernels-only: skip the platform matrix
  /// --threads <n>: worker count for parallel kernels (0 = all hardware
  /// threads). Recorded per KernelRecord so bench_compare.py can refuse to
  /// diff runs measured at different parallelism.
  uint32_t threads = 0;
};

inline BenchOptions ParseArgs(int argc, char** argv) {
  BenchOptions opts;
  auto need_value = [&](int i, const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s requires a value\n", flag);
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      opts.json_path = need_value(i, "--json");
      ++i;
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      opts.repeats = static_cast<uint32_t>(std::atoi(need_value(i, "--repeats")));
      if (opts.repeats == 0) opts.repeats = 1;
      ++i;
    } else if (std::strcmp(argv[i], "--kernel-scale") == 0) {
      opts.kernel_scale =
          static_cast<uint32_t>(std::atoi(need_value(i, "--kernel-scale")));
      ++i;
    } else if (std::strcmp(argv[i], "--kernels-only") == 0) {
      opts.kernels_only = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opts.threads =
          static_cast<uint32_t>(std::atoi(need_value(i, "--threads")));
      ++i;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: %s [--json <path>] "
                   "[--repeats <n>] [--kernel-scale <n>] [--kernels-only] "
                   "[--threads <n>]\n",
                   argv[i], argv[0]);
      std::exit(2);
    }
  }
  return opts;
}

// ------------------------------------------------------- JSON perf records

/// One measured kernel: the unit bench_compare.py diffs between runs.
/// (kernel, graph) is the record key; times are wall seconds with the
/// build / warmup / measure phases reported separately (building a graph
/// or a baseline structure must never pollute the gated median).
struct KernelRecord {
  std::string kernel;
  std::string graph;
  uint32_t scale = 0;
  uint32_t repeats = 1;
  /// Worker threads the kernel ran with (0 = unspecified/serial-only).
  /// bench_compare.py skips (with a warning) pairs whose thread counts
  /// differ — a 4-thread baseline must not gate an 8-thread run.
  uint32_t threads = 0;
  double build_seconds = 0.0;
  double warmup_seconds = 0.0;
  double median_seconds = 0.0;
  double p95_seconds = 0.0;
  double kteps = 0.0;  ///< traversed kilo-edges per median second (0 if n/a)
  /// Edges in the input graph (0 = not recorded). Unlike `kteps`, whose
  /// numerator (edges *traversed*) legitimately differs between algorithm
  /// variants, `kteps_input` divides a fixed workload size by the median,
  /// so it is comparable across kernels and gateable run-over-run.
  uint64_t input_edges = 0;
  double kteps_input = 0.0;  ///< input kilo-edges per median second
  uint64_t peak_rss_bytes = 0;
};

inline double MedianOf(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const size_t mid = xs.size() / 2;
  return xs.size() % 2 == 1 ? xs[mid] : 0.5 * (xs[mid - 1] + xs[mid]);
}

inline double P95Of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  // Nearest-rank percentile: deterministic and defined for tiny samples.
  const size_t rank = (xs.size() * 95 + 99) / 100;  // ceil(n * 0.95)
  return xs[std::min(rank == 0 ? 0 : rank - 1, xs.size() - 1)];
}

/// Collects KernelRecords and writes them as one JSON document:
///   {"schema_version": 1, "bench": "<binary>", "records": [{...}, ...]}
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(KernelRecord record) { records_.push_back(std::move(record)); }
  bool empty() const { return records_.empty(); }

  /// Writes the document; returns false (and prints) on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    out << "{\n  \"schema_version\": 1,\n  \"bench\": \""
        << Escaped(bench_name_) << "\",\n  \"records\": [";
    for (size_t i = 0; i < records_.size(); ++i) {
      const KernelRecord& r = records_[i];
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"kernel\": \"" << Escaped(r.kernel) << "\", \"graph\": \""
          << Escaped(r.graph) << "\", \"scale\": " << r.scale
          << ", \"repeats\": " << r.repeats << ", \"threads\": " << r.threads
          << StringPrintf(", \"build_seconds\": %.6f", r.build_seconds)
          << StringPrintf(", \"warmup_seconds\": %.6f", r.warmup_seconds)
          << StringPrintf(", \"median_seconds\": %.6f", r.median_seconds)
          << StringPrintf(", \"p95_seconds\": %.6f", r.p95_seconds)
          << StringPrintf(", \"kteps\": %.3f", r.kteps)
          << ", \"input_edges\": " << r.input_edges
          << StringPrintf(", \"kteps_input\": %.3f", r.kteps_input)
          << ", \"peak_rss_bytes\": " << r.peak_rss_bytes << "}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "write to %s failed\n", path.c_str());
      return false;
    }
    std::printf("wrote %zu perf records to %s\n", records_.size(),
                path.c_str());
    return true;
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) continue;  // control chars
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::vector<KernelRecord> records_;
};

/// Measures one kernel with separated phases: `build_seconds` is whatever
/// setup time the caller already paid (graph/dataset construction), one
/// untimed-for-the-gate warmup run primes caches/allocators, then
/// `repeats` timed runs produce the gated median/p95. `run` executes the
/// kernel once and returns the number of edges it traversed (0 if TEPS is
/// meaningless for the kernel).
template <typename Fn>
KernelRecord MeasureKernel(const std::string& kernel, const std::string& graph,
                           uint32_t scale, uint32_t repeats,
                           double build_seconds, uint64_t input_edges,
                           Fn&& run) {
  KernelRecord rec;
  rec.kernel = kernel;
  rec.graph = graph;
  rec.scale = scale;
  rec.repeats = repeats == 0 ? 1 : repeats;
  rec.build_seconds = build_seconds;
  rec.input_edges = input_edges;

  Stopwatch warmup_watch;
  uint64_t traversed = run();
  rec.warmup_seconds = warmup_watch.ElapsedSeconds();

  std::vector<double> times;
  times.reserve(rec.repeats);
  for (uint32_t i = 0; i < rec.repeats; ++i) {
    Stopwatch watch;
    traversed = run();
    times.push_back(watch.ElapsedSeconds());
  }
  rec.median_seconds = MedianOf(times);
  rec.p95_seconds = P95Of(times);
  if (traversed > 0 && rec.median_seconds > 0.0) {
    rec.kteps = static_cast<double>(traversed) / rec.median_seconds / 1e3;
  }
  if (input_edges > 0 && rec.median_seconds > 0.0) {
    rec.kteps_input =
        static_cast<double>(input_edges) / rec.median_seconds / 1e3;
  }
  rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
  return rec;
}

/// Back-compat overload for kernels without a recorded input size.
template <typename Fn>
KernelRecord MeasureKernel(const std::string& kernel, const std::string& graph,
                           uint32_t scale, uint32_t repeats,
                           double build_seconds, Fn&& run) {
  return MeasureKernel(kernel, graph, scale, repeats, build_seconds,
                       /*input_edges=*/0, std::forward<Fn>(run));
}

/// Maps harness matrix rows (BenchmarkResult) into KernelRecords, one per
/// successful cell, keyed "<platform>/<ALGO>". Single-shot harness cells
/// have no repeat distribution: median == p95 == the cell runtime.
template <typename Results>
void AddHarnessRecords(JsonEmitter* emitter, const Results& results) {
  for (const auto& r : results) {
    if (!r.status.ok()) continue;
    KernelRecord rec;
    rec.kernel = r.platform + "/" + AlgorithmKindName(r.algorithm);
    rec.graph = r.graph;
    rec.repeats = 1;
    rec.median_seconds = r.runtime_seconds;
    rec.p95_seconds = r.runtime_seconds;
    rec.kteps = r.teps / 1e3;
    rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
    emitter->Add(rec);
  }
}

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& title,
                   const std::string& paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("==============================================================\n");
}

/// Graph500-style R-MAT graph at the given (reduced) scale, undirected.
inline Graph MakeGraph500(uint32_t scale, uint32_t edge_factor = 16,
                          uint64_t seed = 1) {
  datagen::RmatConfig config;
  config.scale = scale;
  config.edge_factor = edge_factor;
  config.seed = seed;
  auto edges = datagen::RmatGenerator(config).Generate(nullptr);
  edges.status().Check();
  return GraphBuilder::Undirected(*edges).ValueOrDie();
}

/// Patents-like stand-in: citation-network flavour — edges are almost
/// exclusively "temporal locality" links (patents cite recent patents), so
/// the graph has a large effective diameter, which is what makes iterative
/// platforms grind on it (Figure 5's low Patents TEPS).
inline Graph MakePatentsStandin(uint64_t num_persons, uint64_t seed = 2) {
  datagen::SocialDatagenConfig config;
  config.num_persons = num_persons;
  config.degree_spec = "weibull:shape=1.1,scale=8";
  config.window_size = 64;
  config.university_fraction = 0.999;  // near-pure locality
  config.interest_fraction = 0.0;
  config.random_fraction = 0.001;
  config.seed = seed;
  auto result = datagen::SocialDatagen(config).Generate(nullptr);
  result.status().Check();
  return GraphBuilder::Undirected(result->edges).ValueOrDie();
}

/// SNB-like stand-in: the Datagen person-knows-person graph — Facebook-like
/// degrees plus abundant long-range friendships, giving the tiny effective
/// diameter of a social network (few BSP supersteps; Figure 5's high SNB
/// TEPS).
inline Graph MakeSnbStandin(uint64_t num_persons, uint64_t seed = 3) {
  datagen::SocialDatagenConfig config;
  config.num_persons = num_persons;
  config.degree_spec = "facebook:mean=18";
  config.window_size = 192;
  config.university_fraction = 0.40;
  config.interest_fraction = 0.30;
  config.random_fraction = 0.30;
  config.seed = seed;
  auto result = datagen::SocialDatagen(config).Generate(nullptr);
  result.status().Check();
  return GraphBuilder::Undirected(result->edges).ValueOrDie();
}

}  // namespace gly::bench
