// Shared helpers for the experiment benches: dataset construction (the
// three Figure 4/5 graphs at reproducible reduced scale) and banner output.
//
// Scale note: the paper's testbed is an 11-machine cluster processing
// Graph500 scale-23 (~134M edges); these benches run on one box, so every
// dataset is scaled down (see EXPERIMENTS.md). The *shapes* of the results
// — orderings, gaps, crossovers — are what the reproduction checks.

#pragma once

#include <cstdio>
#include <string>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "graph/graph.h"

namespace gly::bench {

/// Prints the standard experiment banner.
inline void Banner(const std::string& id, const std::string& title,
                   const std::string& paper_summary) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_summary.c_str());
  std::printf("==============================================================\n");
}

/// Graph500-style R-MAT graph at the given (reduced) scale, undirected.
inline Graph MakeGraph500(uint32_t scale, uint32_t edge_factor = 16,
                          uint64_t seed = 1) {
  datagen::RmatConfig config;
  config.scale = scale;
  config.edge_factor = edge_factor;
  config.seed = seed;
  auto edges = datagen::RmatGenerator(config).Generate(nullptr);
  edges.status().Check();
  return GraphBuilder::Undirected(*edges).ValueOrDie();
}

/// Patents-like stand-in: citation-network flavour — edges are almost
/// exclusively "temporal locality" links (patents cite recent patents), so
/// the graph has a large effective diameter, which is what makes iterative
/// platforms grind on it (Figure 5's low Patents TEPS).
inline Graph MakePatentsStandin(uint64_t num_persons, uint64_t seed = 2) {
  datagen::SocialDatagenConfig config;
  config.num_persons = num_persons;
  config.degree_spec = "weibull:shape=1.1,scale=8";
  config.window_size = 64;
  config.university_fraction = 0.999;  // near-pure locality
  config.interest_fraction = 0.0;
  config.random_fraction = 0.001;
  config.seed = seed;
  auto result = datagen::SocialDatagen(config).Generate(nullptr);
  result.status().Check();
  return GraphBuilder::Undirected(result->edges).ValueOrDie();
}

/// SNB-like stand-in: the Datagen person-knows-person graph — Facebook-like
/// degrees plus abundant long-range friendships, giving the tiny effective
/// diameter of a social network (few BSP supersteps; Figure 5's high SNB
/// TEPS).
inline Graph MakeSnbStandin(uint64_t num_persons, uint64_t seed = 3) {
  datagen::SocialDatagenConfig config;
  config.num_persons = num_persons;
  config.degree_spec = "facebook:mean=18";
  config.window_size = 192;
  config.university_fraction = 0.40;
  config.interest_fraction = 0.30;
  config.random_fraction = 0.30;
  config.seed = seed;
  auto result = datagen::SocialDatagen(config).Generate(nullptr);
  result.status().Check();
  return GraphBuilder::Undirected(result->edges).ValueOrDie();
}

}  // namespace gly::bench
