// Ablation A3 — the "large graph memory footprint" choke point (§2.1).
//
// "there is a drive for new and compact graph storage and compression and
// summarization algorithms that allow to store more data in less RAM."
//
// google-benchmark microbenches over the column store: encode/scan
// throughput and compression ratio for each block encoding, on data shaped
// like the edge table's columns (sorted `from`, clustered `to`, constant
// runs).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "columnstore/column.h"
#include "common/random.h"

namespace {

using gly::Rng;
using gly::columnstore::Column;

std::vector<uint32_t> SortedData(size_t n) {
  Rng rng(1);
  std::vector<uint32_t> values;
  values.reserve(n);
  uint32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<uint32_t>(rng.NextBounded(4));
    values.push_back(acc);
  }
  return values;
}

std::vector<uint32_t> ClusteredData(size_t n) {
  Rng rng(2);
  std::vector<uint32_t> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t base = static_cast<uint32_t>((i / 2048) * 50000);
    values.push_back(base + static_cast<uint32_t>(rng.NextBounded(4096)));
  }
  return values;
}

std::vector<uint32_t> RandomData(size_t n) {
  Rng rng(3);
  std::vector<uint32_t> values(n);
  for (auto& v : values) v = static_cast<uint32_t>(rng.Next());
  return values;
}

std::vector<uint32_t> ConstantData(size_t n) {
  return std::vector<uint32_t>(n, 7);
}

template <std::vector<uint32_t> (*MakeData)(size_t)>
void BM_ColumnEncode(benchmark::State& state) {
  auto values = MakeData(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    Column col = Column::Encode(values);
    benchmark::DoNotOptimize(col.compressed_bytes());
  }
  Column col = Column::Encode(values);
  state.counters["ratio%"] =
      100.0 * static_cast<double>(col.compressed_bytes()) /
      static_cast<double>(col.raw_bytes());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}

template <std::vector<uint32_t> (*MakeData)(size_t)>
void BM_ColumnScan(benchmark::State& state) {
  auto values = MakeData(static_cast<size_t>(state.range(0)));
  Column col = Column::Encode(values);
  std::vector<uint32_t> out;
  for (auto _ : state) {
    col.ReadRange(0, col.size(), &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
  state.counters["ratio%"] =
      100.0 * static_cast<double>(col.compressed_bytes()) /
      static_cast<double>(col.raw_bytes());
}

void BM_RawVectorScan(benchmark::State& state) {
  auto values = RandomData(static_cast<size_t>(state.range(0)));
  std::vector<uint32_t> out;
  for (auto _ : state) {
    out.assign(values.begin(), values.end());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}

constexpr int64_t kN = 1 << 20;

BENCHMARK(BM_ColumnEncode<SortedData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnEncode<ClusteredData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnEncode<RandomData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnEncode<ConstantData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnScan<SortedData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnScan<ClusteredData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnScan<RandomData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColumnScan<ConstantData>)->Arg(kN)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RawVectorScan)->Arg(kN)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: maps the repo-wide `--json <path>` flag onto
// google-benchmark's native JSON reporter so every bench binary shares one
// machine-readable output convention.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
      break;
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
