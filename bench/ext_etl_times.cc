// Extension — ETL time comparison.
//
// The paper: "The runtime measures the complete execution of an algorithm,
// from job submission to result availability, but does not include ETL.
// Comparing ETL times of different platforms is left as future work."
// This bench implements that future work on our platforms: per platform and
// graph size, the harness's untimed LoadGraph phase is measured — the
// HDFS-upload analog for MapReduce, the record-store bulk import for the
// graph database, pointer adoption for the in-memory engines.
//
// It also measures the harness's own ETL pipeline (DESIGN.md §8, "ETL
// performance"): text-edge-file parsing and CSR construction, serial
// reference path vs the chunked parallel path, on an R-MAT graph at
// --kernel-scale. The parallel path is bit-identical to the serial one
// (asserted here on every run), so the duel is a pure performance
// comparison; the four records (etl_parse|etl_build × serial|parallel) are
// what scripts/bench_compare.py gates via BENCH_etl.json.

#include <cstdio>
#include <filesystem>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/stopwatch.h"
#include "common/threadpool.h"
#include "graph/io.h"
#include "harness/platform.h"

namespace {

// Cheap bit-identity spot check: counts must match exactly and every
// sampled adjacency row must be byte-equal. (The exhaustive check lives in
// tests/etl_parity_test.cc; this guards the bench itself from measuring a
// divergent pipeline.)
bool SameGraph(const gly::Graph& a, const gly::Graph& b) {
  if (a.num_vertices() != b.num_vertices() ||
      a.num_edges() != b.num_edges() ||
      a.num_adjacency_entries() != b.num_adjacency_entries()) {
    return false;
  }
  const gly::VertexId n = a.num_vertices();
  const gly::VertexId step = n > 4096 ? n / 4096 : 1;
  for (gly::VertexId v = 0; v < n; v += step) {
    auto oa = a.OutNeighbors(v), ob = b.OutNeighbors(v);
    auto ia = a.InNeighbors(v), ib = b.InNeighbors(v);
    if (oa.size() != ob.size() || ia.size() != ib.size() ||
        !std::equal(oa.begin(), oa.end(), ob.begin()) ||
        !std::equal(ia.begin(), ia.end(), ib.begin())) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gly;
  using namespace gly::harness;
  namespace fs = std::filesystem;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("ext_etl_times");
  bench::Banner("Extension", "ETL time per platform + parallel ETL pipeline",
                "'Comparing ETL times of different platforms is left as "
                "future work' (§3.3)");

  const uint32_t threads =
      opts.threads == 0 ? static_cast<uint32_t>(HardwareThreads())
                        : opts.threads;
  const uint32_t scale = opts.kernel_scale;
  const std::string graph_name = "rmat" + std::to_string(scale);

  // ------------------------------------------------ parse + build duel
  // Dataset: an R-MAT edge file on disk, like a Graphalytics ".e" dump.
  // Generation and the file write are setup, not ETL (build_seconds).
  Stopwatch setup_watch;
  datagen::RmatConfig rmat;
  rmat.scale = scale;
  rmat.edge_factor = 16;
  rmat.seed = 1;
  ThreadPool pool(threads);
  auto gen = datagen::RmatGenerator(rmat).Generate(&pool);
  gen.status().Check();
  fs::path edge_path =
      fs::temp_directory_path() / ("gly_etl_" + graph_name + ".e");
  WriteEdgeListText(*gen, edge_path.string()).Check();
  const double setup_seconds = setup_watch.ElapsedSeconds();
  std::printf("dataset: %s (%llu edges, %s on disk), %u threads\n\n",
              graph_name.c_str(),
              static_cast<unsigned long long>(gen->num_edges()),
              FormatBytes(fs::file_size(edge_path)).c_str(), threads);

  const EdgeListParseOptions parse_opts;
  EtlOptions par_etl;
  par_etl.pool = &pool;

  EdgeList serial_edges, parallel_edges;
  bench::KernelRecord parse_serial = bench::MeasureKernel(
      "etl_parse/serial", graph_name, scale, opts.repeats, setup_seconds,
      [&] {
        auto r = ReadEdgeListText(edge_path.string(), parse_opts);
        r.status().Check();
        serial_edges = std::move(r).ValueOrDie();
        return serial_edges.num_edges();
      });
  parse_serial.threads = 1;
  bench::KernelRecord parse_parallel = bench::MeasureKernel(
      "etl_parse/parallel", graph_name, scale, opts.repeats, setup_seconds,
      [&] {
        auto r = ReadEdgeListText(edge_path.string(), parse_opts, par_etl);
        r.status().Check();
        parallel_edges = std::move(r).ValueOrDie();
        return parallel_edges.num_edges();
      });
  parse_parallel.threads = threads;
  if (serial_edges.edges() != parallel_edges.edges() ||
      serial_edges.num_vertices() != parallel_edges.num_vertices()) {
    std::fprintf(stderr, "FATAL: parallel parse diverged from serial\n");
    return 1;
  }

  CsrBuildOptions par_build;
  par_build.pool = &pool;
  Graph serial_graph, parallel_graph;
  bench::KernelRecord build_serial = bench::MeasureKernel(
      "etl_build/serial", graph_name, scale, opts.repeats, setup_seconds,
      [&] {
        auto g = GraphBuilder::Undirected(serial_edges);
        g.status().Check();
        serial_graph = std::move(g).ValueOrDie();
        return serial_graph.num_adjacency_entries();
      });
  build_serial.threads = 1;
  bench::KernelRecord build_parallel = bench::MeasureKernel(
      "etl_build/parallel", graph_name, scale, opts.repeats, setup_seconds,
      [&] {
        auto g = GraphBuilder::Undirected(serial_edges, par_build);
        g.status().Check();
        parallel_graph = std::move(g).ValueOrDie();
        return parallel_graph.num_adjacency_entries();
      });
  build_parallel.threads = threads;
  if (!SameGraph(serial_graph, parallel_graph)) {
    std::fprintf(stderr, "FATAL: parallel CSR build diverged from serial\n");
    return 1;
  }

  std::error_code ec;
  fs::remove(edge_path, ec);

  auto ratio = [](const bench::KernelRecord& s, const bench::KernelRecord& p) {
    return p.median_seconds > 0.0 ? s.median_seconds / p.median_seconds : 0.0;
  };
  std::printf("%-20s %12s %12s %9s\n", "phase", "serial", "parallel",
              "speedup");
  std::printf("%s\n", std::string(56, '-').c_str());
  std::printf("%-20s %12s %12s %8.2fx\n", "etl_parse",
              FormatSeconds(parse_serial.median_seconds).c_str(),
              FormatSeconds(parse_parallel.median_seconds).c_str(),
              ratio(parse_serial, parse_parallel));
  std::printf("%-20s %12s %12s %8.2fx\n", "etl_build",
              FormatSeconds(build_serial.median_seconds).c_str(),
              FormatSeconds(build_parallel.median_seconds).c_str(),
              ratio(build_serial, build_parallel));
  std::printf("parity: parallel parse and build bit-identical to serial\n\n");
  emitter.Add(parse_serial);
  emitter.Add(parse_parallel);
  emitter.Add(build_serial);
  emitter.Add(build_parallel);

  // ------------------------------------------ platform LoadGraph matrix
  if (!opts.kernels_only) {
    std::printf("%-12s", "platform");
    const uint64_t kSizes[] = {5000, 20000, 80000};
    for (uint64_t n : kSizes) {
      std::printf(" %14lluP", static_cast<unsigned long long>(n));
    }
    std::printf("\n%s\n", std::string(60, '-').c_str());

    // Pre-generate the graphs (generation is not ETL).
    std::vector<Graph> graphs;
    for (uint64_t n : kSizes) {
      graphs.push_back(bench::MakeSnbStandin(n, /*seed=*/77));
    }

    for (const std::string& name : RegisteredPlatforms()) {
      std::printf("%-12s", name.c_str());
      auto platform = MakePlatform(name, Config());
      platform.status().Check();
      for (size_t i = 0; i < graphs.size(); ++i) {
        Stopwatch watch;
        Status s =
            (*platform)->LoadGraph(graphs[i], "etl" + std::to_string(i));
        double seconds = watch.ElapsedSeconds();
        if (!s.ok()) {
          std::printf(" %15s", "FAILED");
        } else {
          std::printf(" %15s", FormatSeconds(seconds).c_str());
          bench::KernelRecord rec;
          rec.kernel = "etl/" + name;
          rec.graph = "snb-" + std::to_string(kSizes[i]);
          rec.median_seconds = seconds;
          rec.p95_seconds = seconds;
          rec.peak_rss_bytes = SystemMonitor::CurrentRssBytes();
          emitter.Add(rec);
        }
        (*platform)->UnloadGraph();
      }
      std::printf("\n");
    }
    std::printf("\nexpected shape: in-memory platforms adopt the graph "
                "near-instantly; MapReduce pays the dataset upload; the graph "
                "database pays record construction + WAL/page flushes, "
                "growing with graph size.\n");
  }
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
