// Extension — ETL time comparison.
//
// The paper: "The runtime measures the complete execution of an algorithm,
// from job submission to result availability, but does not include ETL.
// Comparing ETL times of different platforms is left as future work."
// This bench implements that future work on our platforms: per platform and
// graph size, the harness's untimed LoadGraph phase is measured — the
// HDFS-upload analog for MapReduce, the record-store bulk import for the
// graph database, pointer adoption for the in-memory engines.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/config.h"
#include "common/stopwatch.h"
#include "harness/platform.h"

int main(int argc, char** argv) {
  using namespace gly;
  using namespace gly::harness;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("ext_etl_times");
  bench::Banner("Extension", "ETL time per platform",
                "'Comparing ETL times of different platforms is left as "
                "future work' (§3.3)");

  std::printf("%-12s", "platform");
  const uint64_t kSizes[] = {5000, 20000, 80000};
  for (uint64_t n : kSizes) {
    std::printf(" %14lluP", static_cast<unsigned long long>(n));
  }
  std::printf("\n%s\n", std::string(60, '-').c_str());

  // Pre-generate the graphs (generation is not ETL).
  std::vector<Graph> graphs;
  for (uint64_t n : kSizes) {
    graphs.push_back(bench::MakeSnbStandin(n, /*seed=*/77));
  }

  for (const std::string& name : RegisteredPlatforms()) {
    std::printf("%-12s", name.c_str());
    auto platform = MakePlatform(name, Config());
    platform.status().Check();
    for (size_t i = 0; i < graphs.size(); ++i) {
      Stopwatch watch;
      Status s = (*platform)->LoadGraph(graphs[i], "etl" + std::to_string(i));
      double seconds = watch.ElapsedSeconds();
      if (!s.ok()) {
        std::printf(" %15s", "FAILED");
      } else {
        std::printf(" %15s", FormatSeconds(seconds).c_str());
        bench::KernelRecord rec;
        rec.kernel = "etl/" + name;
        rec.graph = "snb-" + std::to_string(kSizes[i]);
        rec.median_seconds = seconds;
        rec.p95_seconds = seconds;
        rec.peak_rss_bytes = SystemMonitor::CurrentRssBytes();
        emitter.Add(rec);
      }
      (*platform)->UnloadGraph();
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: in-memory platforms adopt the graph "
              "near-instantly; MapReduce pays the dataset upload; the graph "
              "database pays record construction + WAL/page flushes, growing "
              "with graph size.\n");
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
