// Table 1 — "Characteristics of real graphs."
//
// The paper measures five SNAP graphs (Amazon, Youtube, LiveJournal,
// Patents, Wikipedia): nodes, edges, global clustering coefficient,
// average clustering coefficient, degree assortativity. The SNAP downloads
// are unavailable here, so we synthesize stand-ins with the §2.2
// structure-targeted pipeline at 1/10–1/40 scale, then run the same
// analysis the paper ran. The table's point — that real graphs span a
// heterogeneous configuration space, motivating a tunable generator — is
// reproduced if the five stand-ins land near their (scaled) targets.

#include <cstdio>

#include "analysis/degree_distribution.h"
#include "analysis/metrics.h"
#include "bench/bench_util.h"
#include "common/threadpool.h"
#include "datagen/structure_targets.h"

namespace {

struct Dataset {
  const char* name;
  // Paper values (Table 1).
  double paper_nodes_m;
  double paper_edges_m;
  double paper_global_cc;
  double paper_avg_cc;
  double paper_assortativity;
  // Stand-in scale + shape.
  uint64_t nodes;
  uint64_t edges;
  const char* degree_spec;
};

// Scaled ~1/10 for the small graphs, more for the big ones (keeps the
// whole bench under a minute while leaving thousands of triangles).
const Dataset kDatasets[] = {
    {"Amazon", 0.3, 1.2, 0.2361, 0.4198, 0.0027,
     30000, 120000, "geometric:p=0.22"},
    {"Youtube", 1.1, 3.0, 0.0062, 0.0808, -0.0369,
     55000, 150000, "zeta:alpha=2.0,max=2000"},
    {"LiveJournal", 4.0, 35.0, 0.1253, 0.2843, 0.0452,
     40000, 350000, "zeta:alpha=1.8,max=2000"},
    {"Patents", 3.8, 16.5, 0.0671, 0.0757, 0.1332,
     47000, 205000, "weibull:shape=1.2,scale=8"},
    {"Wikipedia", 2.4, 5.0, 0.0022, 0.0526, -0.0853,
     60000, 125000, "zeta:alpha=2.1,max=2000"},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gly;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("table1_real_graphs");
  bench::Banner("Table 1", "Characteristics of real graphs (stand-ins)",
                "five SNAP graphs span heterogeneous CC/assortativity space");
  std::printf("stand-ins are scaled; targets are the paper's CC and "
              "assortativity\n\n");
  std::printf("%-12s %9s %9s | %8s %8s | %8s %8s | %8s %8s\n", "dataset",
              "nodes", "edges", "glCC*", "glCC", "avgCC*", "avgCC", "asrt*",
              "asrt");
  std::printf("%s\n", std::string(96, '-').c_str());

  ThreadPool pool(HardwareThreads());
  for (const Dataset& ds : kDatasets) {
    datagen::StructureTargets targets;
    targets.num_vertices = ds.nodes;
    targets.num_edges = ds.edges;
    targets.target_average_clustering = ds.paper_avg_cc;
    targets.target_assortativity = ds.paper_assortativity;
    targets.degree_spec = ds.degree_spec;
    targets.seed = 1000 + (&ds - kDatasets);
    Stopwatch watch;
    auto result = datagen::GenerateWithTargets(targets, &pool);
    {
      bench::KernelRecord rec;
      rec.kernel = std::string("structure_targets/") + ds.name;
      rec.graph = ds.name;
      rec.median_seconds = watch.ElapsedSeconds();
      rec.p95_seconds = rec.median_seconds;
      rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
      emitter.Add(rec);
    }
    result.status().Check();
    std::printf("%-12s %9llu %9zu | %8.4f %8.4f | %8.4f %8.4f | %8.4f %8.4f\n",
                ds.name, static_cast<unsigned long long>(ds.nodes),
                result->edges.num_edges(), ds.paper_global_cc,
                result->global_clustering, ds.paper_avg_cc,
                result->average_clustering, ds.paper_assortativity,
                result->assortativity);
  }
  std::printf("\n(*) = paper's measurement of the real graph; unstarred = "
              "our stand-in.\n");
  std::printf("Degree-distribution model selection per stand-in "
              "(paper: 'the best fitting model changed'):\n");
  for (const Dataset& ds : kDatasets) {
    datagen::StructureTargets targets;
    targets.num_vertices = ds.nodes / 4;  // quick refit at smaller scale
    targets.num_edges = ds.edges / 4;
    targets.target_average_clustering = ds.paper_avg_cc;
    targets.target_assortativity = ds.paper_assortativity;
    targets.degree_spec = ds.degree_spec;
    targets.closure_bisection_steps = 2;
    targets.rewire_iterations = 5000;
    auto result = datagen::GenerateWithTargets(targets, &pool);
    result.status().Check();
    Graph g = GraphBuilder::Undirected(result->edges).ValueOrDie();
    auto fits = FitAllModels(DegreeHistogram(g));
    std::printf("  %-12s best fit: %-28s (KS %.3f)\n", ds.name,
                fits[0].model_description.c_str(), fits[0].ks_statistic);
  }
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
