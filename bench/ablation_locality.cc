// Ablation A4 — the "poor access locality" choke point (§2.1).
//
// "Modern computers are known not to perform well on intensive
// random-access workloads ... we foresee a tendency to optimize graph
// processing methods by ... making them more local."
//
// google-benchmark: BFS over the same R-MAT graph under three vertex
// labelings — generator order (random permutation), BFS relabeling
// (traversal locality), and degree-sorted relabeling (hub locality, the
// social-layout idea the paper cites [18]). Same algorithm, same graph,
// different memory layouts: runtime differences are pure locality.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <deque>
#include <numeric>
#include <string>
#include <vector>

#include "datagen/rmat.h"
#include "graph/graph.h"
#include "ref/algorithms.h"

namespace {

using namespace gly;

Graph BaseGraph() {
  datagen::RmatConfig config;
  config.scale = 16;
  config.edge_factor = 12;
  config.seed = 4;
  auto edges = datagen::RmatGenerator(config).Generate(nullptr);
  edges.status().Check();
  return GraphBuilder::Undirected(*edges).ValueOrDie();
}

// Relabels the graph with `label[v]` as the new id of v.
Graph Relabel(const Graph& graph, const std::vector<VertexId>& label) {
  EdgeList edges(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (VertexId w : graph.OutNeighbors(v)) {
      if (w >= v) edges.Add(label[v], label[w]);
    }
  }
  return GraphBuilder::Undirected(edges).ValueOrDie();
}

std::vector<VertexId> BfsOrderLabels(const Graph& graph) {
  std::vector<VertexId> label(graph.num_vertices(), kInvalidVertex);
  VertexId next = 0;
  for (VertexId seed = 0; seed < graph.num_vertices(); ++seed) {
    if (label[seed] != kInvalidVertex) continue;
    std::deque<VertexId> queue{seed};
    label[seed] = next++;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop_front();
      for (VertexId w : graph.OutNeighbors(v)) {
        if (label[w] == kInvalidVertex) {
          label[w] = next++;
          queue.push_back(w);
        }
      }
    }
  }
  return label;
}

std::vector<VertexId> DegreeOrderLabels(const Graph& graph) {
  std::vector<VertexId> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&graph](VertexId a, VertexId b) {
    return graph.Degree(a) != graph.Degree(b)
               ? graph.Degree(a) > graph.Degree(b)
               : a < b;
  });
  std::vector<VertexId> label(graph.num_vertices());
  for (VertexId i = 0; i < graph.num_vertices(); ++i) label[order[i]] = i;
  return label;
}

const Graph& GeneratorOrderGraph() {
  static const Graph g = BaseGraph();
  return g;
}
const Graph& BfsOrderGraph() {
  static const Graph g = Relabel(GeneratorOrderGraph(),
                                 BfsOrderLabels(GeneratorOrderGraph()));
  return g;
}
const Graph& DegreeOrderGraph() {
  static const Graph g = Relabel(GeneratorOrderGraph(),
                                 DegreeOrderLabels(GeneratorOrderGraph()));
  return g;
}

void RunBfsBench(benchmark::State& state, const Graph& graph) {
  // Start from the max-degree vertex so every layout traverses the same
  // giant component (vertex ids differ across relabelings).
  VertexId source = 0;
  for (VertexId v = 1; v < graph.num_vertices(); ++v) {
    if (graph.Degree(v) > graph.Degree(source)) source = v;
  }
  for (auto _ : state) {
    auto out = ref::Bfs(graph, BfsParams{source});
    benchmark::DoNotOptimize(out.vertex_values.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(graph.num_adjacency_entries()));
}

void BM_BfsGeneratorOrder(benchmark::State& state) {
  RunBfsBench(state, GeneratorOrderGraph());
}
void BM_BfsBfsOrder(benchmark::State& state) {
  RunBfsBench(state, BfsOrderGraph());
}
void BM_BfsDegreeOrder(benchmark::State& state) {
  RunBfsBench(state, DegreeOrderGraph());
}

BENCHMARK(BM_BfsGeneratorOrder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BfsBfsOrder)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_BfsDegreeOrder)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: maps the repo-wide `--json <path>` flag onto
// google-benchmark's native JSON reporter so every bench binary shares one
// machine-readable output convention.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      args.erase(args.begin() + i, args.begin() + i + 2);
      break;
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
