// Engine-level hot-path bench: BFS / PageRank / CONN on the Pregel,
// dataflow, and graphdb engines with the pooled memory paths enabled
// (their defaults). Where fig4_runtimes races kernel variants against each
// other, this bench gates the *engines* end to end: a regression in the
// arena pools, the radix shuffle, or the sharded page cache moves these
// medians even when the kernel duel's variants shift together.
//
// The committed baseline is BENCH_engines.json (scale 14); ci.sh's
// bench-smoke stage re-runs this binary and diffs it with
// scripts/bench_compare.py.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/temp_dir.h"
#include "dataflow/algorithms.h"
#include "graphdb/algorithms.h"
#include "pregel/algorithms.h"

int main(int argc, char** argv) {
  using namespace gly;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  if (opts.kernel_scale == 18) opts.kernel_scale = 14;  // bench default
  bench::JsonEmitter emitter("engines_hotpath");
  bench::Banner("engines_hotpath",
                "engine medians with pooled hot paths (BFS/PR/CONN)",
                "choke-point analysis (§2.1): excessive messages/data "
                "movement dominate graph-processing runtimes");

  const uint32_t scale = opts.kernel_scale;
  const std::string graph_name = "g500-" + std::to_string(scale);
  Stopwatch build_watch;
  Graph g = bench::MakeGraph500(scale, /*edge_factor=*/16);
  const double graph_build_s = build_watch.ElapsedSeconds();
  std::printf("\nbuilt %s: %u vertices, %llu edges in %.2fs\n",
              graph_name.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), graph_build_s);
  // Shared-build attribution (same contract as fig4_runtimes): the graph
  // build / store import is recorded on the first kernel that pays it.
  double build_unattributed = graph_build_s;
  auto take_build = [&build_unattributed] {
    const double b = build_unattributed;
    build_unattributed = 0.0;
    return b;
  };

  VertexId source = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutNeighbors(v).size() > g.OutNeighbors(source).size()) source = v;
  }
  AlgorithmParams params;
  params.bfs.source = source;
  params.pr = PrParams{/*iterations=*/10, /*damping=*/0.85};

  auto add = [&](bench::KernelRecord rec) {
    std::printf("  %-16s median %8.4fs  p95 %8.4fs  %10.0f input kTEPS\n",
                rec.kernel.c_str(), rec.median_seconds, rec.p95_seconds,
                rec.kteps_input);
    emitter.Add(std::move(rec));
  };

  const AlgorithmKind kinds[] = {AlgorithmKind::kBfs, AlgorithmKind::kPr,
                                 AlgorithmKind::kConn};

  // Pregel engine, pooled outboxes on (the default).
  pregel::EngineConfig engine_config;
  engine_config.num_workers = 8;
  pregel::Engine engine(engine_config);
  for (AlgorithmKind kind : kinds) {
    add(bench::MeasureKernel(
        ToLower(AlgorithmKindName(kind)) + "_pregel", graph_name, scale,
        opts.repeats, take_build(), g.num_edges(), [&] {
          auto out = pregel::RunAlgorithm(engine, g, kind, params);
          out.status().Check();
          return out->traversed_edges;
        }));
  }

  // Dataflow engine, pooled buffers on (the default).
  dataflow::ContextConfig ctx;
  ctx.num_partitions = 8;
  for (AlgorithmKind kind : kinds) {
    add(bench::MeasureKernel(
        ToLower(AlgorithmKindName(kind)) + "_dataflow", graph_name, scale,
        opts.repeats, take_build(), g.num_edges(), [&] {
          auto out = dataflow::RunAlgorithm(ctx, g, kind, params);
          out.status().Check();
          return out->traversed_edges;
        }));
  }

  // Graphdb engine: one bulk import (the build phase), then the sharded
  // page cache serves every run.
  auto scratch = TempDir::Create("gly-engines-bench");
  scratch.status().Check();
  graphdb::StoreConfig store_config;
  store_config.directory = scratch->path() + "/store";
  Stopwatch import_watch;
  auto store = graphdb::GraphStore::Open(store_config);
  store.status().Check();
  (*store)->BulkImport(g.ToEdgeList()).Check();
  const double import_s = import_watch.ElapsedSeconds();
  double import_unattributed = import_s;
  for (AlgorithmKind kind : kinds) {
    const double import_build = import_unattributed;
    import_unattributed = 0.0;
    add(bench::MeasureKernel(
        ToLower(AlgorithmKindName(kind)) + "_graphdb", graph_name, scale,
        opts.repeats, import_build, g.num_edges(), [&] {
          auto out = graphdb::RunAlgorithmOnStore(
              store->get(), g.undirected(), /*memory_budget_bytes=*/0, kind,
              params);
          out.status().Check();
          return out->traversed_edges;
        }));
  }

  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
