// Figure 5 — "Thousands of traversed edges per second (kTEPS) for all
// implementations of CONN algorithm running on Graph500 23, Patents, and
// SNB 1000 graphs."
//
// Same matrix as Figure 4 restricted to CONN, reported as kTEPS. The
// paper's highlighted observation: "Giraph is more than an order of
// magnitude faster computing the connected components in the SNB 1000
// graph than in the Patents graph (6272 kTEPS vs. 364 kTEPS)" — i.e. graph
// structure (not just size) drives the TEPS metric. Our SNB stand-in has
// the small effective diameter of a social network, the Patents stand-in a
// weaker structure, so the same ordering must emerge.

#include <cstdio>

#include "bench/bench_util.h"
#include "harness/core.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace gly;
  using namespace gly::harness;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("fig5_conn_kteps");
  bench::Banner("Figure 5", "kTEPS for CONN across platforms and graphs",
                "structure drives TEPS: Giraph SNB >> Giraph Patents "
                "(paper: 6272 vs 364 kTEPS)");

  Graph g500 = bench::MakeGraph500(12, 16);
  Graph patents = bench::MakePatentsStandin(20000);
  Graph snb = bench::MakeSnbStandin(25000);

  RunSpec spec;
  spec.platforms = {"giraph", "graphx", "mapreduce", "neo4j"};
  // Same platform deployment model as the Figure 4 bench.
  Config config;
  config.SetInt("giraph.memory_budget_mb", 512);
  config.SetDouble("giraph.barrier_latency_s", 0.005);
  config.SetDouble("giraph.network_mib_per_s", 1024);
  config.SetInt("graphx.memory_budget_mb", 32);
  config.SetDouble("graphx.shuffle_mib_per_s", 256);
  config.SetDouble("graphx.materialize_mib_per_s", 512);
  config.SetDouble("mapreduce.job_startup_s", 0.15);
  config.SetInt("neo4j.memory_budget_mb", 5);
  spec.platform_config = config;
  spec.datasets.push_back({"g500-12", &g500, {}});
  spec.datasets.push_back({"patents", &patents, {}});
  spec.datasets.push_back({"snb", &snb, {}});
  spec.algorithms = {AlgorithmKind::kConn};
  spec.validate = true;
  spec.monitor = false;

  auto results = RunBenchmark(spec);
  results.status().Check();
  std::printf("%s\n", RenderTepsTable(*results, AlgorithmKind::kConn).c_str());

  auto teps_of = [&](const char* platform, const char* graph) -> double {
    for (const BenchmarkResult& r : *results) {
      if (r.platform == platform && r.graph == graph && r.status.ok()) {
        return r.teps;
      }
    }
    return -1.0;
  };
  double snb_teps = teps_of("giraph", "snb");
  double patents_teps = teps_of("giraph", "patents");
  if (snb_teps > 0 && patents_teps > 0) {
    std::printf("shape check vs paper: giraph kTEPS snb/patents = %.1fx "
                "(paper: 6272/364 = 17x; want > 1)\n",
                snb_teps / patents_teps);
  }
  bench::AddHarnessRecords(&emitter, *results);
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
