// Ablation A2 — the "excessive network utilization" choke point (§2.1).
//
// "if the communication needs of all nodes and their CPU exceed the
// available network capacity, the system becomes network bound and ceases
// to scale. As such, graph workloads call for methods that may reduce the
// network communication" — e.g. combiners.
//
// Experiment: Pregel BFS with and without the min message combiner, with a
// simulated network. Reported: messages, cross-worker bytes, and runtime
// under increasingly constrained bandwidth — the combiner's advantage
// grows as the network tightens.

#include <cstdio>

#include "bench/bench_util.h"
#include "pregel/algorithms.h"

int main(int argc, char** argv) {
  using namespace gly;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("ablation_network");
  bench::Banner("Ablation A2", "Excessive network utilization",
                "combiners cut cross-worker traffic; benefit grows as "
                "bandwidth shrinks");

  Graph g500 = bench::MakeGraph500(13, 16);
  std::printf("graph: g500-13 (%u vertices, %llu edges)\n\n",
              g500.num_vertices(),
              static_cast<unsigned long long>(g500.num_edges()));

  std::printf("%14s | %12s %14s %10s | %12s %14s %10s | %7s\n",
              "bandwidth", "msgs(comb)", "bytes(comb)", "time",
              "msgs(none)", "bytes(none)", "time", "speedup");
  std::printf("%s\n", std::string(110, '-').c_str());
  for (double mib_per_s : {0.0, 512.0, 128.0, 32.0}) {
    pregel::EngineConfig config;
    config.num_workers = 8;
    config.network_mib_per_s = mib_per_s;
    pregel::Engine engine(config);
    pregel::RunStats with;
    pregel::RunStats without;
    auto a = pregel::RunBfs(engine, g500, BfsParams{0}, &with);
    a.status().Check();
    auto b = pregel::RunBfsNoCombiner(engine, g500, BfsParams{0}, &without);
    b.status().Check();
    std::printf("%11.0f MiB | %12llu %14llu %9.2fs | %12llu %14llu %9.2fs | "
                "%6.2fx\n",
                mib_per_s,
                static_cast<unsigned long long>(with.total_messages),
                static_cast<unsigned long long>(with.total_cross_worker_bytes),
                with.total_seconds,
                static_cast<unsigned long long>(without.total_messages),
                static_cast<unsigned long long>(
                    without.total_cross_worker_bytes),
                without.total_seconds,
                without.total_seconds / with.total_seconds);
    const std::string suffix = StringPrintf("@%.0fmib", mib_per_s);
    auto record = [&](const char* kernel, const pregel::RunStats& stats) {
      bench::KernelRecord rec;
      rec.kernel = kernel + suffix;
      rec.graph = "g500-13";
      rec.scale = 13;
      rec.median_seconds = stats.total_seconds;
      rec.p95_seconds = stats.total_seconds;
      rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
      emitter.Add(rec);
    };
    record("bfs_combiner", with);
    record("bfs_nocombiner", without);
  }
  std::printf("\n(bandwidth 0 = unconstrained network)\n");
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
