// Figure 3 — "Scalability of Datagen."
//
// The paper generates increasingly large person-knows-person graphs on two
// systems: a 4-node commodity cluster (8 cores used, one disk per node)
// and a single fat node (16 cores, one disk). Observed shape: the single
// node wins while generation is CPU-bound (small graphs), the cluster
// scales better once I/O-bound ("thanks to the greater disk bandwidth
// provided by the four disks").
//
// Here both "systems" are simulated on one box (see runner.h): the cluster
// charges per-phase coordination latency but writes through 4 independent
// disk throttles; the single node has no coordination cost but one
// throttle. The sweep is scaled down ~1000x from the paper's 100M–5000M
// edges; the crossover, not the absolute times, is the reproduced result.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/temp_dir.h"
#include "datagen/runner.h"

int main(int argc, char** argv) {
  using namespace gly;
  using namespace gly::datagen;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("fig3_datagen_scalability");
  bench::Banner("Figure 3", "Scalability of Datagen (single vs cluster)",
                "single node faster when CPU-bound; cluster wins once "
                "I/O-bound");

  auto dir = TempDir::Create("gly-fig3");
  dir.status().Check();

  const uint64_t kPersonCounts[] = {20000, 50000, 100000,
                                    200000, 400000, 800000};
  // Low simulated per-disk bandwidth so the I/O-bound regime is reached
  // within the scaled sweep (paper: commodity HDDs).
  const double kDiskMibPerS = 24.0;

  std::printf("%10s %12s | %12s %12s | %s\n", "persons", "edges(K)",
              "single(s)", "cluster(s)", "faster");
  std::printf("%s\n", std::string(68, '-').c_str());

  for (uint64_t persons : kPersonCounts) {
    DatagenRunConfig config;
    config.datagen.num_persons = persons;
    config.datagen.degree_spec = "facebook:mean=25";
    config.datagen.window_size = 256;
    config.datagen.seed = 21;
    config.disk_mib_per_s = kDiskMibPerS;

    config.mode = RunMode::kSingleNode;
    config.threads_per_node = 8;
    config.output_dir = dir->File("single-" + std::to_string(persons));
    auto single = RunDatagenJob(config);
    single.status().Check();

    config.mode = RunMode::kCluster;
    config.num_nodes = 4;
    config.threads_per_node = 2;
    config.cluster_phase_overhead_s = 0.35;
    config.output_dir = dir->File("cluster-" + std::to_string(persons));
    auto cluster = RunDatagenJob(config);
    cluster.status().Check();

    std::printf("%10llu %12.0f | %12.2f %12.2f | %s\n",
                static_cast<unsigned long long>(persons),
                static_cast<double>(single->num_edges) / 1e3,
                single->wall_seconds, cluster->wall_seconds,
                single->wall_seconds < cluster->wall_seconds ? "single"
                                                             : "cluster");
    std::printf("%10s %12s |  gen %5.2f io %5.2f | gen %5.2f io %5.2f ovh "
                "%4.2f\n",
                "", "", single->generate_seconds, single->write_seconds,
                cluster->generate_seconds, cluster->write_seconds,
                cluster->overhead_seconds);
    auto record = [&](const char* kernel, double seconds) {
      bench::KernelRecord rec;
      rec.kernel = kernel;
      rec.graph = "snb-" + std::to_string(persons);
      rec.median_seconds = seconds;
      rec.p95_seconds = seconds;
      rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
      emitter.Add(rec);
    };
    record("datagen_single", single->wall_seconds);
    record("datagen_cluster", cluster->wall_seconds);
  }
  std::printf("\nExpected shape (paper Fig. 3): 'single' rows first, then a "
              "crossover to 'cluster'\nas the write phase dominates.\n");
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
