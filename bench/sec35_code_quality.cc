// Section 3.5 — "Code Quality" (bench wrapper).
//
// Regenerates the code-quality report for this repository, standing in for
// the paper's Jenkins + SonarQube pipeline ("all code commits are
// statically analyzed ... which automatically signals regressions").
// The analyzer itself lives in tools/code_quality_report.cc; this wrapper
// invokes it over GLY_SOURCE_DIR so the report ships with every benchmark
// run.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"

#ifndef GLY_SOURCE_DIR
#define GLY_SOURCE_DIR "."
#endif
#ifndef GLY_BINARY_DIR
#define GLY_BINARY_DIR "."
#endif

int main(int argc, char** argv) {
  using namespace gly;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("sec35_code_quality");
  std::printf("==============================================================\n");
  std::printf("Section 3.5 — Code quality of the reference implementations\n");
  std::printf("paper: reference implementations ship with code-quality "
              "reports\n");
  std::printf("==============================================================\n");
  std::string tool = std::string(GLY_BINARY_DIR) + "/tools/code_quality_report";
  std::string cmd = tool + " " + GLY_SOURCE_DIR;
  Stopwatch watch;
  int rc = std::system(cmd.c_str());
  if (rc != 0) {
    std::printf("tool invocation failed (%d); falling back to in-place "
                "scan note\n", rc);
    return 1;
  }
  bench::KernelRecord rec;
  rec.kernel = "code_quality_report";
  rec.graph = "repo";
  rec.median_seconds = watch.ElapsedSeconds();
  rec.p95_seconds = rec.median_seconds;
  rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
  emitter.Add(rec);
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
