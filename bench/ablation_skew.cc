// Ablation A1 — the "skewed execution intensity" choke point (§2.1).
//
// "iterative algorithms often have a varying workload in the diverse
// iterations ... those that compute a converging metric in the later
// iterations typically perform less work ... the network latency and
// synchronization very easily becomes dominant over CPU cost."
//
// Experiment 1: CONN per-superstep trace on a social graph — active
// vertices and messages collapse over supersteps while the per-superstep
// barrier cost stays constant, so late supersteps are pure overhead.
//
// Experiment 2: worker imbalance under hash vs degree-aware partitioning
// on a skewed (R-MAT) graph — the mitigation the paper suggests
// ("adaptive graph re-partitioning ... to achieve better work balance").

#include <cstdio>

#include <algorithm>

#include "bench/bench_util.h"
#include "graph/partition.h"
#include "pregel/algorithms.h"

int main(int argc, char** argv) {
  using namespace gly;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("ablation_skew");
  bench::Banner("Ablation A1", "Skewed execution intensity",
                "converging iterations do little work; skew hurts barriers");

  // Experiment 1: converging-tail trace.
  Graph snb = bench::MakeSnbStandin(30000);
  pregel::EngineConfig config;
  config.num_workers = 8;
  config.barrier_latency_s = 0.002;  // fixed per-superstep sync cost
  pregel::RunStats stats;
  auto out = pregel::RunConn(pregel::Engine(config), snb, &stats);
  out.status().Check();
  std::printf("\nCONN on snb stand-in: per-superstep trace\n");
  std::printf("%5s %12s %12s %10s %10s %10s\n", "step", "active", "messages",
              "compute(s)", "barrier(s)", "imbalance");
  for (const auto& ss : stats.per_superstep) {
    std::printf("%5u %12llu %12llu %10.4f %10.4f %10.2f\n", ss.superstep,
                static_cast<unsigned long long>(ss.active_vertices),
                static_cast<unsigned long long>(ss.messages_sent),
                ss.compute_seconds, ss.network_seconds, ss.worker_imbalance);
  }
  const auto& first = stats.per_superstep[1];
  const auto& last = stats.per_superstep.back();
  std::printf("\nwork collapse: active %llu -> %llu; barrier cost is "
              "constant, so the tail is synchronization-dominated "
              "(the choke point).\n",
              static_cast<unsigned long long>(first.active_vertices),
              static_cast<unsigned long long>(last.active_vertices));

  // Experiment 2: partitioning vs load imbalance on a skewed graph —
  // static cut/imbalance metrics plus a live engine run under each policy
  // (the paper's suggested mitigation: "adaptive graph re-partitioning ...
  // to achieve better work balance").
  Graph g500 = bench::MakeGraph500(13, 16);
  for (uint32_t workers : {4u, 8u, 16u}) {
    HashPartitioner hash(workers);
    BalancedEdgePartitioner balanced(g500, workers);
    std::printf("workers=%2u  hash imbalance=%.2f cut=%.2f | "
                "degree-aware imbalance=%.2f cut=%.2f\n",
                workers, LoadImbalance(g500, hash), EdgeCutRatio(g500, hash),
                LoadImbalance(g500, balanced),
                EdgeCutRatio(g500, balanced));
  }
  std::printf("\nlive CONN runs under each policy (8 workers):\n");
  for (auto policy : {pregel::PartitioningPolicy::kHash,
                      pregel::PartitioningPolicy::kBalanced}) {
    pregel::EngineConfig run_config;
    run_config.num_workers = 8;
    run_config.partitioning = policy;
    pregel::RunStats run_stats;
    auto run = pregel::RunConn(pregel::Engine(run_config), g500, &run_stats);
    run.status().Check();
    double max_imbalance = 1.0;
    for (const auto& ss : run_stats.per_superstep) {
      max_imbalance = std::max(max_imbalance, ss.worker_imbalance);
    }
    std::printf("  %-13s time=%.3fs supersteps=%u peak worker "
                "imbalance=%.2f\n",
                policy == pregel::PartitioningPolicy::kHash ? "hash"
                                                            : "degree-aware",
                run_stats.total_seconds, run_stats.supersteps, max_imbalance);
    bench::KernelRecord rec;
    rec.kernel = policy == pregel::PartitioningPolicy::kHash
                     ? "conn_pregel_hash"
                     : "conn_pregel_balanced";
    rec.graph = "g500-13";
    rec.scale = 13;
    rec.median_seconds = run_stats.total_seconds;
    rec.p95_seconds = run_stats.total_seconds;
    rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
    emitter.Add(rec);
  }
  std::printf("\nexpected: degree-aware partitioning reduces imbalance "
              "toward 1.0 on the skewed R-MAT graph.\n");
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
