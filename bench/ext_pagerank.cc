// Extension — PageRank across all platforms.
//
// The paper's workload is the five-algorithm set of §3.2, with more
// algorithms planned ("The idea of LDBC is to design the Graphalytics
// workload such that all these issues arise"); LDBC Graphalytics later
// standardized PageRank. This bench runs our PR extension on every
// platform and validates against the reference — demonstrating that adding
// an algorithm to the harness is exactly the paper's "implementing the
// algorithms" step, nothing more.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/config.h"
#include "harness/core.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace gly;
  using namespace gly::harness;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("ext_pagerank");
  bench::Banner("Extension", "PageRank on all platforms",
                "workload growth path: new algorithm, same harness");

  Graph snb = bench::MakeSnbStandin(20000);
  RunSpec spec;
  spec.platforms = RegisteredPlatforms();
  Config config;
  config.SetInt("neo4j.memory_budget_mb", 64);
  spec.platform_config = config;
  AlgorithmParams params;
  params.pr = PrParams{20, 0.85};
  spec.datasets.push_back({"snb", &snb, params});
  spec.algorithms = {AlgorithmKind::kPr};
  spec.monitor = false;

  auto results = RunBenchmark(spec);
  results.status().Check();
  std::printf("%-12s %12s %12s %10s\n", "platform", "runtime", "kTEPS",
              "validated");
  for (const auto& r : *results) {
    if (!r.status.ok()) {
      std::printf("%-12s %12s %12s %10s\n", r.platform.c_str(), "-", "-",
                  "-");
      continue;
    }
    std::printf("%-12s %12s %12.0f %10s\n", r.platform.c_str(),
                FormatSeconds(r.runtime_seconds).c_str(), r.teps / 1e3,
                r.validation.ok() ? "yes" : "NO");
  }
  bench::AddHarnessRecords(&emitter, *results);
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
