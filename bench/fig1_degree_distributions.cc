// Figure 1 — "Node degree of Datagen graphs compared to Zeta and Geometric
// models."
//
// The paper generates graphs with the Zeta (alpha = 1.7) and Geometric
// (p = 0.12) degree plugins and plots observed degree frequency against the
// theoretical model. We print the same series (log-spaced degree buckets:
// observed count vs model expectation) plus goodness-of-fit numbers, and
// assert-style report whether the plugin's family is recovered.

#include <cstdio>

#include "analysis/degree_distribution.h"
#include "analysis/metrics.h"
#include "bench/bench_util.h"
#include "datagen/social_datagen.h"

namespace {

void PrintSeries(const char* title, const gly::Histogram& observed,
                 const gly::DegreeModel& model) {
  const double n = static_cast<double>(observed.total_count());
  std::printf("\n-- %s --\n", title);
  std::printf("%8s %12s %12s\n", "degree", "observed", "model");
  // Log-spaced buckets as in the paper's log-log plot.
  uint64_t prev = 0;
  for (double edge = 1.0; edge <= observed.Max() * 1.5; edge *= 1.6) {
    uint64_t hi = static_cast<uint64_t>(edge);
    if (hi <= prev) continue;
    uint64_t obs = 0;
    double expect = 0.0;
    for (uint64_t k = prev + 1; k <= hi; ++k) {
      obs += observed.CountOf(k);
      expect += n * model.Pmf(k);
    }
    if (obs > 0 || expect >= 0.5) {
      std::printf("%8llu %12llu %12.1f\n",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(obs), expect);
    }
    prev = hi;
  }
  std::printf("KS statistic vs model: %.4f\n",
              KsStatistic(observed, model));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gly;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("fig1_degree_distributions");
  bench::Banner("Figure 1", "Datagen degree distributions vs models",
                "Datagen reliably reproduces Zeta(1.7) and Geometric(0.12)");

  const uint64_t kPersons = 50000;
  auto record = [&](const char* kernel, double seconds) {
    bench::KernelRecord rec;
    rec.kernel = kernel;
    rec.graph = "datagen-" + std::to_string(kPersons);
    rec.median_seconds = seconds;
    rec.p95_seconds = seconds;
    rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
    emitter.Add(rec);
  };

  // Zeta plugin.
  {
    datagen::SocialDatagenConfig config;
    config.num_persons = kPersons;
    config.degree_spec = "zeta:alpha=1.7,max=2000";
    config.window_size = 256;
    config.seed = 11;
    Stopwatch watch;
    auto result = datagen::SocialDatagen(config).Generate(nullptr);
    record("datagen_zeta", watch.ElapsedSeconds());
    result.status().Check();
    Graph g = GraphBuilder::Undirected(result->edges).ValueOrDie();
    Histogram degrees = DegreeHistogram(g);
    ZetaModel fitted = ZetaModel::Fit(degrees);
    PrintSeries("Datagen vs Zeta (target alpha = 1.7)", degrees, fitted);
    std::printf("fitted: %s (target alpha 1.7)\n", fitted.ToString().c_str());
    auto fits = FitAllModels(degrees);
    std::printf("model ranking: ");
    for (const auto& f : fits) std::printf("%s  ", f.model_description.c_str());
    std::printf("\n");
  }

  // Geometric plugin.
  {
    datagen::SocialDatagenConfig config;
    config.num_persons = kPersons;
    config.degree_spec = "geometric:p=0.12";
    config.window_size = 256;
    config.seed = 12;
    Stopwatch watch;
    auto result = datagen::SocialDatagen(config).Generate(nullptr);
    record("datagen_geometric", watch.ElapsedSeconds());
    result.status().Check();
    Graph g = GraphBuilder::Undirected(result->edges).ValueOrDie();
    Histogram degrees = DegreeHistogram(g);
    GeometricModel fitted = GeometricModel::Fit(degrees);
    PrintSeries("Datagen vs Geometric (target p = 0.12)", degrees, fitted);
    std::printf("fitted: %s (target p 0.12)\n", fitted.ToString().c_str());
    auto fits = FitAllModels(degrees);
    std::printf("model ranking: ");
    for (const auto& f : fits) std::printf("%s  ", f.model_description.c_str());
    std::printf("\n");
  }

  // Empirical plugin round trip (the paper's third plugin: "feed Datagen
  // with empirical data to be reproduced").
  {
    Histogram empirical;
    empirical.Add(1, 5000);
    empirical.Add(3, 3000);
    empirical.Add(10, 1500);
    empirical.Add(40, 400);
    empirical.Add(200, 50);
    auto plugin = datagen::EmpiricalDegreePlugin::FromHistogram(empirical);
    plugin.status().Check();
    Rng rng(13);
    Histogram sampled;
    for (int i = 0; i < 200000; ++i) sampled.Add(plugin->Sample(rng));
    std::printf("\n-- Empirical plugin round trip --\n");
    std::printf("%8s %12s %12s\n", "degree", "input-frac", "sampled-frac");
    for (uint64_t k : {1, 3, 10, 40, 200}) {
      std::printf("%8llu %12.4f %12.4f\n", static_cast<unsigned long long>(k),
                  static_cast<double>(empirical.CountOf(k)) /
                      static_cast<double>(empirical.total_count()),
                  static_cast<double>(sampled.CountOf(k)) /
                      static_cast<double>(sampled.total_count()));
    }
  }
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
