// Figure 4 — "Runtimes for all implementations of all algorithms running
// on Graph500 23, Patents, and SNB 1000 graphs. Missing values indicate
// failures."
//
// The full matrix: 5 algorithms x 4 platforms x 3 graphs, run through the
// benchmark harness (load untimed, run timed, output validated). Scaled
// down from the paper's testbed (11 machines, scale-23 R-MAT) to one box;
// the reproduced *shapes* are:
//   1. MapReduce trails the in-memory platforms by 1-2 orders of magnitude
//      (paper: BFS on Graph500 = 6179 s vs Giraph 86 s / GraphX 99 s)
//      because every iteration rewrites the graph through disk — but it
//      never fails.
//   2. GraphX is slower than Giraph on CONN (paper: ~3x) and fails on
//      workloads Giraph completes (immutable re-materialization + lineage
//      exhaust its budget).
//   3. Neo4j is fastest on graphs it can hold and absent on the largest
//      (single-machine memory bound).

#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "harness/core.h"
#include "harness/report.h"

int main() {
  using namespace gly;
  using namespace gly::harness;
  bench::Banner("Figure 4", "Runtimes: 5 algorithms x 4 platforms x 3 graphs",
                "MapReduce ~100x slower but never fails; GraphX fails where "
                "Giraph doesn't; Neo4j fastest where it fits");

  // Datasets (reduced scale; see EXPERIMENTS.md).
  Graph g500 = bench::MakeGraph500(/*scale=*/12, /*edge_factor=*/16);
  Graph patents = bench::MakePatentsStandin(20000);
  Graph snb = bench::MakeSnbStandin(25000);
  std::printf("datasets: g500-12 (%u v, %llu e), patents (%u v, %llu e), "
              "snb (%u v, %llu e)\n\n",
              g500.num_vertices(),
              static_cast<unsigned long long>(g500.num_edges()),
              patents.num_vertices(),
              static_cast<unsigned long long>(patents.num_edges()),
              snb.num_vertices(),
              static_cast<unsigned long long>(snb.num_edges()));

  RunSpec spec;
  spec.platforms = {"giraph", "graphx", "mapreduce", "neo4j"};
  // Budgets sized so the paper's failure pattern emerges mechanistically:
  // every in-memory platform gets the same per-worker budget; MapReduce is
  // disk-based and unbounded (it "does not need to keep graph data in
  // memory"). Neo4j's page-cache/state budget excludes the largest graph.
  // Cost models represent the platforms' real deployments: Giraph pays a
  // per-superstep barrier and ships cross-worker messages over the cluster
  // network; GraphX additionally pays for re-materializing immutable
  // datasets (JVM object churn) and shuffles through local disk; MapReduce
  // does real file I/O every iteration; Neo4j is a single embedded process.
  Config config;
  config.SetInt("giraph.memory_budget_mb", 512);
  config.SetInt("giraph.workers", 8);
  config.SetDouble("giraph.barrier_latency_s", 0.005);
  config.SetDouble("giraph.network_mib_per_s", 1024);
  config.SetInt("graphx.memory_budget_mb", 32);
  config.SetInt("graphx.workers", 8);
  config.SetDouble("graphx.shuffle_mib_per_s", 256);
  config.SetDouble("graphx.materialize_mib_per_s", 512);
  config.SetInt("mapreduce.workers", 8);
  config.SetDouble("mapreduce.job_startup_s", 0.15);
  config.SetInt("neo4j.memory_budget_mb", 5);
  spec.platform_config = config;

  AlgorithmParams params;
  params.bfs.source = 0;
  params.cd = CdParams{5, 0.05};
  params.evo.num_new_vertices = 32;
  spec.datasets.push_back({"g500-12", &g500, params});
  spec.datasets.push_back({"patents", &patents, params});
  spec.datasets.push_back({"snb", &snb, params});
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kCd,
                     AlgorithmKind::kConn, AlgorithmKind::kEvo,
                     AlgorithmKind::kStats};
  spec.validate = true;
  spec.monitor = true;

  auto results = RunBenchmark(spec, [](const BenchmarkResult& r) {
    std::printf("  %-10s %-9s %-6s %10s  %s\n", r.platform.c_str(),
                r.graph.c_str(), AlgorithmKindName(r.algorithm).c_str(),
                r.status.ok() ? FormatSeconds(r.runtime_seconds).c_str()
                              : "FAILED",
                r.status.ok()
                    ? (r.validation.ok() ? "validated" : "INVALID")
                    : std::string(StatusCodeToString(r.status.code())).c_str());
  });
  results.status().Check();

  std::printf("\n%s\n", RenderRuntimeTable(*results).c_str());

  // Shape checks against the paper.
  auto runtime_of = [&](const char* platform, const char* graph,
                        AlgorithmKind algo) -> double {
    for (const BenchmarkResult& r : *results) {
      if (r.platform == platform && r.graph == graph && r.algorithm == algo) {
        return r.status.ok() ? r.runtime_seconds : -1.0;
      }
    }
    return -1.0;
  };
  double mr_bfs = runtime_of("mapreduce", "g500-12", AlgorithmKind::kBfs);
  double gi_bfs = runtime_of("giraph", "g500-12", AlgorithmKind::kBfs);
  double gx_conn = runtime_of("graphx", "patents", AlgorithmKind::kConn);
  double gi_conn = runtime_of("giraph", "patents", AlgorithmKind::kConn);
  std::printf("shape checks vs paper:\n");
  if (mr_bfs > 0 && gi_bfs > 0) {
    std::printf("  BFS g500: mapreduce/giraph = %.0fx  (paper: 6179/86 = "
                "72x; want >> 1)\n",
                mr_bfs / gi_bfs);
  }
  if (gx_conn > 0 && gi_conn > 0) {
    std::printf("  CONN patents: graphx/giraph = %.1fx  (paper: ~3x; want "
                "> 1)\n",
                gx_conn / gi_conn);
  }
  int graphx_failures = 0;
  int mapreduce_failures = 0;
  int neo4j_failures = 0;
  for (const BenchmarkResult& r : *results) {
    if (!r.status.ok() && r.platform == "graphx") ++graphx_failures;
    if (!r.status.ok() && r.platform == "mapreduce") ++mapreduce_failures;
    if (!r.status.ok() && r.platform == "neo4j") ++neo4j_failures;
  }
  std::printf("  failures: graphx=%d (paper: several), mapreduce=%d "
              "(paper: none from memory), neo4j=%d (largest graph)\n",
              graphx_failures, mapreduce_failures, neo4j_failures);

  // Results database + CSV (the harness's Report Generator outputs).
  Status s = WriteResultsCsv(*results, "fig4_results.csv");
  s.Check();
  s = AppendResultsDatabase(*results, config, "results_database.jsonl");
  s.Check();
  std::printf("\nwrote fig4_results.csv and results_database.jsonl\n");
  return 0;
}
