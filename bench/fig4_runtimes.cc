// Figure 4 — "Runtimes for all implementations of all algorithms running
// on Graph500 23, Patents, and SNB 1000 graphs. Missing values indicate
// failures."
//
// The full matrix: 5 algorithms x 4 platforms x 3 graphs, run through the
// benchmark harness (load untimed, run timed, output validated). Scaled
// down from the paper's testbed (11 machines, scale-23 R-MAT) to one box;
// the reproduced *shapes* are:
//   1. MapReduce trails the in-memory platforms by 1-2 orders of magnitude
//      (paper: BFS on Graph500 = 6179 s vs Giraph 86 s / GraphX 99 s)
//      because every iteration rewrites the graph through disk — but it
//      never fails.
//   2. GraphX is slower than Giraph on CONN (paper: ~3x) and fails on
//      workloads Giraph completes (immutable re-materialization + lineage
//      exhaust its budget).
//   3. Neo4j is fastest on graphs it can hold and absent on the largest
//      (single-machine memory bound).

#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"
#include "dataflow/algorithms.h"
#include "harness/core.h"
#include "harness/report.h"
#include "pregel/algorithms.h"

namespace {

// Traversal-kernel duel: each optimized kernel races the naive/classic
// variant it replaced on one Graph500 graph at `--kernel-scale`. These
// records are the bench_compare.py regression-gate baseline
// (BENCH_kernels.json); the dir-opt-vs-naive pair is also the ISSUE
// acceptance check (>= 2x at scale >= 18).
void RunKernelDuel(const gly::bench::BenchOptions& opts,
                   gly::bench::JsonEmitter* emitter) {
  using namespace gly;
  const uint32_t scale = opts.kernel_scale;
  const std::string graph_name = "g500-" + std::to_string(scale);
  std::printf("\nkernel duel on %s (%u repeats)\n", graph_name.c_str(),
              opts.repeats);

  Stopwatch build_watch;
  Graph g = bench::MakeGraph500(scale, /*edge_factor=*/16);
  const double build_s = build_watch.ElapsedSeconds();
  // The graph is built once and shared by every kernel below: the build
  // cost is attributed to the first record that uses it, and 0.0 to the
  // rest (previously the same build_seconds was duplicated into all eight
  // records, overstating total build time 8x).
  double build_unattributed = build_s;
  auto take_build = [&build_unattributed] {
    const double b = build_unattributed;
    build_unattributed = 0.0;
    return b;
  };
  std::printf("  built %s: %u vertices, %llu edges in %.2fs\n",
              graph_name.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), build_s);

  // R-MAT leaves some vertex ids edge-less; an isolated source would turn
  // the duel into an empty traversal. Use the max-degree vertex (Graph500
  // samples sources from connected vertices for the same reason).
  VertexId source = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.OutNeighbors(v).size() > g.OutNeighbors(source).size()) source = v;
  }
  std::printf("  bfs source: vertex %u (degree %zu)\n", source,
              g.OutNeighbors(source).size());

  BfsParams naive_params;
  naive_params.source = source;
  naive_params.strategy = BfsStrategy::kTopDown;
  BfsParams diropt_params;  // default: direction-optimizing
  diropt_params.source = source;

  auto add = [&](gly::bench::KernelRecord rec) {
    std::printf("  %-22s median %8.4fs  p95 %8.4fs  %10.0f kTEPS\n",
                rec.kernel.c_str(), rec.median_seconds, rec.p95_seconds,
                rec.kteps);
    emitter->Add(std::move(rec));
  };

  // Reference kernels: same thread count (one), so the duel isolates the
  // direction optimization itself.
  gly::bench::KernelRecord naive_rec =
      bench::MeasureKernel("bfs_ref_naive", graph_name, scale, opts.repeats,
                           take_build(), g.num_edges(), [&] {
                             return ref::Bfs(g, naive_params).traversed_edges;
                           });
  gly::bench::KernelRecord diropt_rec =
      bench::MeasureKernel("bfs_ref_diropt", graph_name, scale, opts.repeats,
                           take_build(), g.num_edges(), [&] {
                             return ref::BfsDirOpt(g, diropt_params)
                                 .traversed_edges;
                           });
  const double naive_median = naive_rec.median_seconds;
  const double diropt_median = diropt_rec.median_seconds;
  add(std::move(naive_rec));
  add(std::move(diropt_rec));

  // Pregel: classic fixed partitions + sparse inboxes vs the dense-frontier
  // fast path with work-stealing chunks.
  pregel::EngineConfig classic;
  classic.num_workers = 8;
  classic.dense_frontier_threshold = 0.0;
  classic.steal_chunk_vertices = 0;
  pregel::EngineConfig fast;
  fast.num_workers = 8;
  add(bench::MeasureKernel("bfs_pregel_classic", graph_name, scale,
                           opts.repeats, take_build(), g.num_edges(), [&] {
                             auto out = pregel::RunBfs(pregel::Engine(classic),
                                                       g, diropt_params);
                             out.status().Check();
                             return out->traversed_edges;
                           }));
  add(bench::MeasureKernel("bfs_pregel_dense", graph_name, scale, opts.repeats,
                           take_build(), g.num_edges(), [&] {
                             auto out = pregel::RunBfs(pregel::Engine(fast), g,
                                                       diropt_params);
                             out.status().Check();
                             return out->traversed_edges;
                           }));

  // Dataflow: the legacy Pregel-by-joins plan vs the direction-optimizing
  // frontier kernel.
  dataflow::ContextConfig ctx;
  ctx.num_partitions = 8;
  AlgorithmParams joins_params;
  joins_params.bfs = naive_params;  // top_down routes to the joins plan
  AlgorithmParams dataflow_diropt;
  dataflow_diropt.bfs = diropt_params;
  add(bench::MeasureKernel(
      "bfs_dataflow_joins", graph_name, scale, opts.repeats, take_build(),
      g.num_edges(), [&] {
        auto out =
            dataflow::RunAlgorithm(ctx, g, AlgorithmKind::kBfs, joins_params);
        out.status().Check();
        return out->traversed_edges;
      }));
  add(bench::MeasureKernel(
      "bfs_dataflow_diropt", graph_name, scale, opts.repeats, take_build(),
      g.num_edges(), [&] {
        auto out = dataflow::RunAlgorithm(ctx, g, AlgorithmKind::kBfs,
                                          dataflow_diropt);
        out.status().Check();
        return out->traversed_edges;
      }));

  // Non-BFS reference kernels keep the gate's coverage wider than the
  // tentpole: a regression in CSR iteration or the frontier module shows
  // up here even if both BFS duel entries shift together.
  add(bench::MeasureKernel("conn_ref", graph_name, scale, opts.repeats,
                           take_build(), g.num_edges(),
                           [&] { return ref::Conn(g).traversed_edges; }));
  PrParams pr_params{/*iterations=*/10, /*damping=*/0.85};
  add(bench::MeasureKernel("pr_ref", graph_name, scale, opts.repeats,
                           take_build(), g.num_edges(), [&] {
                             return ref::Pr(g, pr_params).traversed_edges;
                           }));

  if (diropt_median > 0.0) {
    std::printf("\n  dir-opt speedup over naive top-down: %.2fx "
                "(acceptance: >= 2x at scale >= 18)\n\n",
                naive_median / diropt_median);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gly;
  using namespace gly::harness;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("fig4_runtimes");
  bench::Banner("Figure 4", "Runtimes: 5 algorithms x 4 platforms x 3 graphs",
                "MapReduce ~100x slower but never fails; GraphX fails where "
                "Giraph doesn't; Neo4j fastest where it fits");
  if (opts.kernels_only) {
    RunKernelDuel(opts, &emitter);
    if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
    return 0;
  }

  // Datasets (reduced scale; see EXPERIMENTS.md).
  Graph g500 = bench::MakeGraph500(/*scale=*/12, /*edge_factor=*/16);
  Graph patents = bench::MakePatentsStandin(20000);
  Graph snb = bench::MakeSnbStandin(25000);
  std::printf("datasets: g500-12 (%u v, %llu e), patents (%u v, %llu e), "
              "snb (%u v, %llu e)\n\n",
              g500.num_vertices(),
              static_cast<unsigned long long>(g500.num_edges()),
              patents.num_vertices(),
              static_cast<unsigned long long>(patents.num_edges()),
              snb.num_vertices(),
              static_cast<unsigned long long>(snb.num_edges()));

  RunSpec spec;
  spec.platforms = {"giraph", "graphx", "mapreduce", "neo4j"};
  // Budgets sized so the paper's failure pattern emerges mechanistically:
  // every in-memory platform gets the same per-worker budget; MapReduce is
  // disk-based and unbounded (it "does not need to keep graph data in
  // memory"). Neo4j's page-cache/state budget excludes the largest graph.
  // Cost models represent the platforms' real deployments: Giraph pays a
  // per-superstep barrier and ships cross-worker messages over the cluster
  // network; GraphX additionally pays for re-materializing immutable
  // datasets (JVM object churn) and shuffles through local disk; MapReduce
  // does real file I/O every iteration; Neo4j is a single embedded process.
  Config config;
  config.SetInt("giraph.memory_budget_mb", 512);
  config.SetInt("giraph.workers", 8);
  config.SetDouble("giraph.barrier_latency_s", 0.005);
  config.SetDouble("giraph.network_mib_per_s", 1024);
  config.SetInt("graphx.memory_budget_mb", 32);
  config.SetInt("graphx.workers", 8);
  config.SetDouble("graphx.shuffle_mib_per_s", 256);
  config.SetDouble("graphx.materialize_mib_per_s", 512);
  config.SetInt("mapreduce.workers", 8);
  config.SetDouble("mapreduce.job_startup_s", 0.15);
  config.SetInt("neo4j.memory_budget_mb", 5);
  spec.platform_config = config;

  AlgorithmParams params;
  params.bfs.source = 0;
  params.cd = CdParams{5, 0.05};
  params.evo.num_new_vertices = 32;
  spec.datasets.push_back({"g500-12", &g500, params});
  spec.datasets.push_back({"patents", &patents, params});
  spec.datasets.push_back({"snb", &snb, params});
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kCd,
                     AlgorithmKind::kConn, AlgorithmKind::kEvo,
                     AlgorithmKind::kStats};
  spec.validate = true;
  spec.monitor = true;

  auto results = RunBenchmark(spec, [](const BenchmarkResult& r) {
    std::printf("  %-10s %-9s %-6s %10s  %s\n", r.platform.c_str(),
                r.graph.c_str(), AlgorithmKindName(r.algorithm).c_str(),
                r.status.ok() ? FormatSeconds(r.runtime_seconds).c_str()
                              : "FAILED",
                r.status.ok()
                    ? (r.validation.ok() ? "validated" : "INVALID")
                    : std::string(StatusCodeToString(r.status.code())).c_str());
  });
  results.status().Check();

  std::printf("\n%s\n", RenderRuntimeTable(*results).c_str());

  // Shape checks against the paper.
  auto runtime_of = [&](const char* platform, const char* graph,
                        AlgorithmKind algo) -> double {
    for (const BenchmarkResult& r : *results) {
      if (r.platform == platform && r.graph == graph && r.algorithm == algo) {
        return r.status.ok() ? r.runtime_seconds : -1.0;
      }
    }
    return -1.0;
  };
  double mr_bfs = runtime_of("mapreduce", "g500-12", AlgorithmKind::kBfs);
  double gi_bfs = runtime_of("giraph", "g500-12", AlgorithmKind::kBfs);
  double gx_conn = runtime_of("graphx", "patents", AlgorithmKind::kConn);
  double gi_conn = runtime_of("giraph", "patents", AlgorithmKind::kConn);
  std::printf("shape checks vs paper:\n");
  if (mr_bfs > 0 && gi_bfs > 0) {
    std::printf("  BFS g500: mapreduce/giraph = %.0fx  (paper: 6179/86 = "
                "72x; want >> 1)\n",
                mr_bfs / gi_bfs);
  }
  if (gx_conn > 0 && gi_conn > 0) {
    std::printf("  CONN patents: graphx/giraph = %.1fx  (paper: ~3x; want "
                "> 1)\n",
                gx_conn / gi_conn);
  }
  int graphx_failures = 0;
  int mapreduce_failures = 0;
  int neo4j_failures = 0;
  for (const BenchmarkResult& r : *results) {
    if (!r.status.ok() && r.platform == "graphx") ++graphx_failures;
    if (!r.status.ok() && r.platform == "mapreduce") ++mapreduce_failures;
    if (!r.status.ok() && r.platform == "neo4j") ++neo4j_failures;
  }
  std::printf("  failures: graphx=%d (paper: several), mapreduce=%d "
              "(paper: none from memory), neo4j=%d (largest graph)\n",
              graphx_failures, mapreduce_failures, neo4j_failures);

  // Results database + CSV (the harness's Report Generator outputs).
  Status s = WriteResultsCsv(*results, "fig4_results.csv");
  s.Check();
  s = AppendResultsDatabase(*results, config, "results_database.jsonl");
  s.Check();
  std::printf("\nwrote fig4_results.csv and results_database.jsonl\n");

  bench::AddHarnessRecords(&emitter, *results);
  RunKernelDuel(opts, &emitter);
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
