// Section 3.4 — "BFS on a DBMS."
//
// The paper runs, on OpenLink Virtuoso over the SNB 1000 dataset:
//
//   select count (*) from (select spe_to from
//     (select transitive t_in (1) t_out (2) t_distinct
//        spe_from, spe_to from sp_edge) derived_table_1
//     where spe_from = 420) derived_table_2;
//
// reporting: 2.28e6 random lookups, 2.89e8 edge endpoints visited, 7 s,
// 41.3 MTEPS, and a CPU profile of 33% border hash table / 10% exchange
// operator / 57% column access + decompression.
//
// We execute the same plan on our column store (partitioned hash table,
// exchange between lookup and border recording, compressed columns) over a
// scaled SNB stand-in and report the same profile.

#include <cstdio>

#include "bench/bench_util.h"
#include "columnstore/edge_table.h"
#include "columnstore/transitive.h"

int main(int argc, char** argv) {
  using namespace gly;
  using namespace gly::columnstore;
  bench::BenchOptions opts = bench::ParseArgs(argc, argv);
  bench::JsonEmitter emitter("sec34_dbms_bfs");
  bench::Banner("Section 3.4", "Transitive BFS on the column store",
                "Virtuoso: 2.28e6 lookups, 2.89e8 endpoints, 41.3 MTEPS, "
                "profile 33/10/57%");

  // SNB stand-in scaled so the run is seconds, not minutes. The edge table
  // stores both orientations (the SQL table does too — person-knows-person
  // is symmetric in SNB).
  Graph snb = bench::MakeSnbStandin(120000, /*seed=*/34);
  EdgeList arcs(snb.num_vertices());
  arcs.Reserve(snb.num_adjacency_entries());
  for (VertexId v = 0; v < snb.num_vertices(); ++v) {
    for (VertexId w : snb.OutNeighbors(v)) arcs.Add(v, w);
  }
  auto table = EdgeTable::Build(arcs);
  table.status().Check();
  std::printf("sp_edge table: %llu rows, %s compressed (%s raw, %.1f%%)\n",
              static_cast<unsigned long long>(table->num_rows()),
              FormatBytes(table->compressed_bytes()).c_str(),
              FormatBytes(table->raw_bytes()).c_str(),
              100.0 * static_cast<double>(table->compressed_bytes()) /
                  static_cast<double>(table->raw_bytes()));

  TransitiveConfig config;
  config.num_partitions = HardwareThreads();
  auto profile = TransitiveCount(*table, /*source=*/420, config);
  profile.status().Check();

  std::printf("\nquery: select count(*) ... transitive ... where spe_from = "
              "420\n\n");
  std::printf("%-28s %15s %15s\n", "metric", "paper", "this run");
  std::printf("%-28s %15s %15llu\n", "count(*) distinct reached", "-",
              static_cast<unsigned long long>(profile->distinct_reached));
  std::printf("%-28s %15s %15llu\n", "random lookups", "2.28e6",
              static_cast<unsigned long long>(profile->random_lookups));
  std::printf("%-28s %15s %15llu\n", "edge endpoints visited", "2.89e8",
              static_cast<unsigned long long>(
                  profile->edge_endpoints_visited));
  std::printf("%-28s %15s %15.2f\n", "time (s)", "7", profile->seconds);
  std::printf("%-28s %15s %15.1f\n", "MTEPS", "41.3", profile->mteps);
  std::printf("%-28s %15s %14.0f%%\n", "border hash table", "33%",
              100 * profile->hash_fraction);
  std::printf("%-28s %15s %14.0f%%\n", "exchange operator", "10%",
              100 * profile->exchange_fraction);
  std::printf("%-28s %15s %14.0f%%\n", "column access+decompress", "57%",
              100 * profile->column_fraction);
  std::printf("\nshape check: column access should dominate, hash table "
              "second, exchange smallest — %s\n",
              (profile->column_fraction > profile->hash_fraction &&
               profile->hash_fraction > profile->exchange_fraction)
                  ? "OK"
                  : "DIFFERENT (see EXPERIMENTS.md)");
  bench::KernelRecord rec;
  rec.kernel = "transitive_bfs_columnstore";
  rec.graph = "snb-120000";
  rec.median_seconds = profile->seconds;
  rec.p95_seconds = profile->seconds;
  rec.kteps = profile->mteps * 1e3;
  rec.peak_rss_bytes = harness::SystemMonitor::CurrentRssBytes();
  emitter.Add(rec);
  if (!opts.json_path.empty() && !emitter.WriteTo(opts.json_path)) return 1;
  return 0;
}
