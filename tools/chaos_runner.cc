// chaos_runner — crash-restart chaos driver for the benchmark harness.
//
// Proves the journal/resume contract the hard way: it launches a real
// `graphalytics_run` child over a 4-platform × {BFS, PR} R-MAT matrix,
// SIGKILLs it at a seeded-random point mid-matrix, restarts it with
// --resume, and repeats. After the kill rounds, a final --resume run must
// complete the whole matrix with exit 0, and the journal must be
// consistent: every cell present, last entry ok + validated, and each
// cell's clean entry journaled exactly once — resume must never re-execute
// (and therefore never re-journal) a finished cell, and a torn journal
// tail from a SIGKILL must never lose one.
//
//   $ chaos_runner --bin ./graphalytics_run [--kills 10] [--seed 42]
//                  [--workdir chaos-work] [--jobs N]
//
// --jobs N makes every child run its matrix through the concurrent cell
// scheduler (harness.jobs = N): kills then land while several cells are in
// flight and the journal writer is shared, and resume must still yield
// every cell clean exactly once.
//
// Exit 0 on success; 1 with a diagnostic on any violated invariant.
// SIGKILL (not SIGTERM) is the point: the child gets no chance to flush,
// unwind, or handle anything — exactly the failure mode the per-cell
// journal flush is designed to survive.

#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "harness/report.h"
#include "ref/algorithms.h"

namespace fs = std::filesystem;

namespace {

// The matrix the child runs: small enough to finish in seconds, big enough
// (8 cells, 4 platform engines, parallel ETL, validation on) that a random
// kill point lands mid-ETL, mid-algorithm, or mid-journal-append.
constexpr int kExpectedCells = 4 /* platforms */ * 2 /* algorithms */;

const char kChaosConfig[] = R"(graphs = chaos
graph.chaos.source = rmat
graph.chaos.scale = 14
graph.chaos.edge_factor = 16
graph.chaos.seed = 7
graph.chaos.bfs_source = 0

platforms = giraph, graphx, mapreduce, neo4j
algorithms = bfs, pr

validate = true
monitor = false
report.dir = report
)";

struct Options {
  std::string bin;
  std::string workdir = "chaos-work";
  int kills = 10;
  uint64_t seed = 42;
  int jobs = 1;  ///< harness.jobs for every child (>1: concurrent scheduler)
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "chaos_runner: FAIL: %s\n", message.c_str());
  std::exit(1);
}

/// Launches `bin config [--resume]` with stdout/stderr appended to
/// `log_path` (the child's chatter is diagnostics, not test output).
pid_t Launch(const Options& opts, const std::string& config_path,
             bool resume, const std::string& log_path) {
  pid_t pid = ::fork();
  if (pid < 0) Die("fork failed: " + std::string(std::strerror(errno)));
  if (pid == 0) {
    int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(opts.bin.c_str()));
    if (resume) argv.push_back(const_cast<char*>("--resume"));
    argv.push_back(const_cast<char*>(config_path.c_str()));
    argv.push_back(nullptr);
    ::execv(opts.bin.c_str(), argv.data());
    std::fprintf(stderr, "execv %s: %s\n", opts.bin.c_str(),
                 std::strerror(errno));
    std::_Exit(127);
  }
  return pid;
}

/// Waits up to `delay_seconds` for the child, then SIGKILLs it. Returns
/// true if the kill landed (child was still running), false if the child
/// finished the matrix before the kill point — also fine: later rounds and
/// the final run then just verify resume is a fast no-op.
bool KillAfter(pid_t pid, double delay_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(delay_seconds);
  int status = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) return false;  // finished before the kill point
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
  return true;
}

/// One journal line, in file order.
struct JournalEntry {
  gly::harness::BenchmarkResult result;
  bool clean = false;  // status ok + validation ok
};

void VerifyJournal(const fs::path& journal_path) {
  std::ifstream file(journal_path);
  if (!file) Die("journal missing: " + journal_path.string());

  std::map<std::string, std::vector<JournalEntry>> by_cell;
  std::string line;
  size_t lines = 0;
  size_t torn = 0;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    ++lines;
    auto parsed = gly::harness::ResultFromJson(line);
    // Malformed lines are sealed torn tails from a SIGKILL mid-append —
    // expected under chaos; the cell they would have recorded must have
    // been re-executed, which the per-cell checks below verify.
    if (!parsed.ok()) {
      ++torn;
      continue;
    }
    JournalEntry entry;
    entry.clean = parsed->status.ok() && parsed->validation.ok();
    std::string key = parsed->platform + "/" + parsed->graph + "/" +
                      gly::AlgorithmKindName(parsed->algorithm);
    entry.result = std::move(parsed).ValueOrDie();
    by_cell[key].push_back(std::move(entry));
  }

  if (by_cell.size() != kExpectedCells) {
    Die("journal covers " + std::to_string(by_cell.size()) + " cells, want " +
        std::to_string(kExpectedCells));
  }
  for (const auto& [key, entries] : by_cell) {
    const JournalEntry& last = entries.back();
    if (!last.clean) {
      Die("cell " + key + " last journal entry is not clean (status " +
          last.result.status.ToString() + ", validation " +
          last.result.validation.ToString() + ")");
    }
    size_t clean_entries = 0;
    for (const JournalEntry& e : entries) clean_entries += e.clean ? 1 : 0;
    if (clean_entries != 1) {
      Die("cell " + key + " journaled clean " +
          std::to_string(clean_entries) +
          " times — resume re-executed (or duplicated) a finished cell");
    }
  }
  std::fprintf(stderr,
               "chaos_runner: journal consistent — %zu lines (%zu torn), "
               "%d cells, every cell clean exactly once\n",
               lines, torn, kExpectedCells);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) Die(std::string(flag) + " needs a value");
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--bin") == 0) {
      opts.bin = next("--bin");
    } else if (std::strcmp(argv[i], "--kills") == 0) {
      opts.kills = std::atoi(next("--kills"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--workdir") == 0) {
      opts.workdir = next("--workdir");
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      opts.jobs = std::atoi(next("--jobs"));
    } else {
      std::fprintf(stderr,
                   "usage: %s --bin <graphalytics_run> [--kills N] "
                   "[--seed S] [--workdir DIR] [--jobs N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opts.bin.empty()) Die("--bin <graphalytics_run> is required");

  std::error_code ec;
  fs::remove_all(opts.workdir, ec);
  fs::create_directories(opts.workdir);
  const fs::path workdir = fs::absolute(opts.workdir);
  const fs::path config_path = workdir / "chaos.properties";
  const fs::path log_path = workdir / "child.log";
  const fs::path journal_path = workdir / "report" / "journal.jsonl";
  {
    std::ofstream config(config_path);
    config << kChaosConfig;
    if (opts.jobs > 1) {
      config << "harness.jobs = " << opts.jobs << "\n";
    }
  }
  // The child resolves report.dir relative to its cwd; run every child
  // from the workdir so all artifacts stay inside it.
  const fs::path original_cwd = fs::current_path();
  fs::current_path(workdir);

  // Each kill round: start (first round from scratch, later ones resuming
  // the journal), let it run for a seeded-random slice, SIGKILL. The delay
  // range is tuned so early rounds die mid-ETL/mid-cell and later rounds
  // die deep into the matrix.
  gly::Rng rng(opts.seed);
  int landed = 0;
  for (int round = 0; round < opts.kills; ++round) {
    const bool resume = round > 0;
    // A fresh matrix takes several seconds at this scale; [0.1, 3.1)s
    // lands kills everywhere from mid-ETL to deep in the matrix, while
    // resumed rounds (shorter runs) often die mid-cell or mid-append.
    const double delay_s = 0.1 + 3.0 * rng.NextDouble();
    pid_t pid = Launch(opts, config_path.string(), resume, log_path.string());
    const bool killed = KillAfter(pid, delay_s);
    landed += killed ? 1 : 0;
    std::fprintf(stderr,
                 "chaos_runner: round %d/%d %s after %.3fs (%s)\n", round + 1,
                 opts.kills, killed ? "SIGKILL" : "finished", delay_s,
                 resume ? "resume" : "fresh");
  }
  std::fprintf(stderr, "chaos_runner: %d/%d kills landed mid-run\n", landed,
               opts.kills);

  // Final run: must complete the matrix, validated, exit 0.
  pid_t pid = Launch(opts, config_path.string(), /*resume=*/true,
                     log_path.string());
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    Die("final --resume run failed (see " + log_path.string() + ")");
  }

  VerifyJournal(journal_path);
  fs::current_path(original_cwd);
  std::fprintf(stderr, "chaos_runner: OK\n");
  return 0;
}
