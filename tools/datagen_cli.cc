// datagen_cli — standalone dataset generator.
//
// "users can generate using the Datagen Data Generator new synthetic
// datasets to suit the requirements of their applications" (§2.3). This
// tool exposes the generator stack on the command line and writes
// Graphalytics edge files (.e text or .bin binary).
//
//   $ datagen_cli social --persons 100000 --degrees zeta:alpha=1.7
//       --window 128 --seed 42 --out snb.e
//   $ datagen_cli rmat --scale 16 --edge-factor 16 --out g500.bin
//   $ datagen_cli targeted --vertices 30000 --edges 120000
//       --avg-cc 0.42 --assortativity 0.0 --out amazon.e
//
// Appends a summary (vertices, edges, clustering, assortativity) to stdout.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "analysis/metrics.h"
#include "common/string_util.h"
#include "common/threadpool.h"
#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "datagen/structure_targets.h"
#include "graph/io.h"

namespace {

using namespace gly;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage:\n"
      "  %s social   --persons N [--degrees SPEC] [--window W] [--seed S]\n"
      "              --out FILE\n"
      "  %s rmat     --scale K [--edge-factor F] [--seed S] --out FILE\n"
      "  %s targeted --vertices N --edges M [--avg-cc C] [--assortativity A]\n"
      "              [--degrees SPEC] [--seed S] --out FILE\n"
      "FILE ending in .bin is binary, anything else is a text edge list.\n"
      "SPEC examples: facebook:mean=20 zeta:alpha=1.7 geometric:p=0.12\n",
      argv0, argv0, argv0);
  return 2;
}

Status WriteOut(const EdgeList& edges, const std::string& path) {
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".bin") {
    return WriteEdgeListBinary(edges, path);
  }
  return WriteEdgeListText(edges, path);
}

void PrintSummary(const EdgeList& edges) {
  auto graph = GraphBuilder::Undirected(edges);
  graph.status().Check();
  ThreadPool pool(HardwareThreads());
  GraphCharacteristics chars = ComputeCharacteristics(*graph, &pool);
  std::printf("vertices=%llu edges=%llu global_cc=%.4f avg_cc=%.4f "
              "assortativity=%.4f\n",
              static_cast<unsigned long long>(chars.num_vertices),
              static_cast<unsigned long long>(chars.num_edges),
              chars.global_clustering_coefficient,
              chars.average_clustering_coefficient,
              chars.degree_assortativity);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  std::string mode = argv[1];
  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return Usage(argv[0]);
    flags[argv[i] + 2] = argv[i + 1];
  }
  auto flag = [&flags](const char* name, const char* def) -> std::string {
    auto it = flags.find(name);
    return it == flags.end() ? def : it->second;
  };
  std::string out_path = flag("out", "");
  if (out_path.empty()) return Usage(argv[0]);

  ThreadPool pool(HardwareThreads());
  EdgeList edges;
  if (mode == "social") {
    datagen::SocialDatagenConfig config;
    config.num_persons = ParseUint64(flag("persons", "10000")).ValueOr(10000);
    config.degree_spec = flag("degrees", "facebook:mean=20");
    config.window_size = ParseUint64(flag("window", "128")).ValueOr(128);
    config.seed = ParseUint64(flag("seed", "42")).ValueOr(42);
    auto result = datagen::SocialDatagen(config).Generate(&pool);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    edges = std::move(result->edges);
  } else if (mode == "rmat") {
    datagen::RmatConfig config;
    config.scale =
        static_cast<uint32_t>(ParseUint64(flag("scale", "16")).ValueOr(16));
    config.edge_factor = static_cast<uint32_t>(
        ParseUint64(flag("edge-factor", "16")).ValueOr(16));
    config.seed = ParseUint64(flag("seed", "1")).ValueOr(1);
    auto result = datagen::RmatGenerator(config).Generate(&pool);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    edges = std::move(result).ValueOrDie();
  } else if (mode == "targeted") {
    datagen::StructureTargets targets;
    targets.num_vertices =
        ParseUint64(flag("vertices", "10000")).ValueOr(10000);
    targets.num_edges = ParseUint64(flag("edges", "40000")).ValueOr(40000);
    targets.target_average_clustering =
        ParseDouble(flag("avg-cc", "0.1")).ValueOr(0.1);
    targets.target_assortativity =
        ParseDouble(flag("assortativity", "0")).ValueOr(0.0);
    targets.degree_spec = flag("degrees", "zeta:alpha=2.0,max=1000");
    targets.seed = ParseUint64(flag("seed", "5")).ValueOr(5);
    auto result = datagen::GenerateWithTargets(targets, &pool);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    edges = std::move(result->edges);
  } else {
    return Usage(argv[0]);
  }

  Status s = WriteOut(edges, out_path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  PrintSummary(edges);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
