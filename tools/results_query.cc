// results_query — CLI over the results database.
//
// The paper's design "includes a database for Results that is hosted by us
// online and accepts results submissions from Graphalytics users". Locally
// the harness appends one JSON object per benchmark cell to a JSONL file
// (see harness/report.h); this tool is the query side: filter by platform/
// graph/algorithm and print rows or aggregates.
//
//   $ results_query results_database.jsonl [--platform P] [--graph G]
//       [--algorithm A] [--failures] [--summary]
//   $ results_query --top-phases <profile.json> [--top K]
//   $ results_query --critical-path <profile.json>
//
// The row parser handles exactly the flat JSON the Report Generator emits;
// it is not a general JSON library. The profile subcommands read the
// profile.json artifacts a `--profile` run writes next to trace.json.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "common/trace_analysis.h"

namespace {

using gly::Split;
using gly::StringPrintf;

struct Row {
  std::string platform;
  std::string graph;
  std::string algorithm;
  std::string status;
  double runtime_s = 0.0;
  double teps = 0.0;
};

// Extracts `"key":"value"` or `"key":number` from one flat JSON line.
std::string ExtractField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  if (pos < line.size() && line[pos] == '"') {
    size_t end = line.find('"', pos + 1);
    if (end == std::string::npos) return "";
    return line.substr(pos + 1, end - pos - 1);
  }
  size_t end = line.find_first_of(",}", pos);
  return line.substr(pos, end - pos);
}

gly::Result<gly::trace::ProfileSummary> LoadProfile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return gly::Status::IOError("cannot open " + path);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return gly::trace::ParseProfileJson(json);
}

// `results_query --top-phases profile.json [--top K]`: the aggregated
// self-time table — where the run's wall clock actually went.
int TopPhases(const std::string& path, size_t top_k) {
  auto profile = LoadProfile(path);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::printf("%-32s %12s %8s %8s\n", "phase", "self (s)", "count",
              "% wall");
  size_t shown = 0;
  for (const auto& entry : profile->self_time) {
    if (top_k > 0 && shown >= top_k) break;
    double pct = profile->wall_seconds > 0.0
                     ? 100.0 * entry.self_seconds / profile->wall_seconds
                     : 0.0;
    std::printf("%-32s %12.4f %8llu %7.1f%%\n", entry.name.c_str(),
                entry.self_seconds, (unsigned long long)entry.count, pct);
    ++shown;
  }
  std::printf("(wall %.4f s, %zu completed spans, sampler %s: %llu samples"
              ", %llu dropped)\n",
              profile->wall_seconds, profile->completed_spans,
              profile->sampler.mode.c_str(),
              (unsigned long long)profile->sampler.samples,
              (unsigned long long)profile->sampler.dropped);
  return 0;
}

// `results_query --critical-path profile.json`: the longest dependency
// chain through the span forest, root first, with per-step self time.
int CriticalPath(const std::string& path) {
  auto profile = LoadProfile(path);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::printf("critical path from root \"%s\" — %.4f s of %.4f s wall\n",
              profile->root.c_str(), profile->critical_path_seconds,
              profile->wall_seconds);
  for (size_t i = 0; i < profile->critical_path.size(); ++i) {
    const auto& step = profile->critical_path[i];
    std::printf("%*s%-32s tid=%u span=%.4fs self=%.4fs\n",
                (int)(2 * i), "", step.name.c_str(), step.tid,
                step.span_seconds, step.self_seconds);
  }
  if (!profile->workers.empty()) {
    std::printf("workers:\n");
    for (const auto& w : profile->workers) {
      std::printf("  tid=%-4u busy=%.4fs idle=%.4fs util=%.0f%%\n", w.tid,
                  w.busy_seconds, w.idle_seconds, w.utilization * 100.0);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <results.jsonl> [--platform P] [--graph G] "
                 "[--algorithm A] [--failures] [--summary]\n"
                 "       %s --top-phases <profile.json> [--top K]\n"
                 "       %s --critical-path <profile.json>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--top-phases") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --top-phases <profile.json> [--top K]\n",
                   argv[0]);
      return 2;
    }
    size_t top_k = 0;  // 0 = all entries the profile kept
    if (argc >= 5 && std::string(argv[3]) == "--top") {
      top_k = static_cast<size_t>(std::strtoul(argv[4], nullptr, 10));
    }
    return TopPhases(argv[2], top_k);
  }
  if (std::string(argv[1]) == "--critical-path") {
    if (argc != 3) {
      std::fprintf(stderr, "usage: %s --critical-path <profile.json>\n",
                   argv[0]);
      return 2;
    }
    return CriticalPath(argv[2]);
  }
  std::string path = argv[1];
  std::string want_platform;
  std::string want_graph;
  std::string want_algorithm;
  bool failures_only = false;
  bool summary = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--platform") want_platform = next();
    else if (arg == "--graph") want_graph = next();
    else if (arg == "--algorithm") want_algorithm = next();
    else if (arg == "--failures") failures_only = true;
    else if (arg == "--summary") summary = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Row row;
    row.platform = ExtractField(line, "platform");
    row.graph = ExtractField(line, "graph");
    row.algorithm = ExtractField(line, "algorithm");
    row.status = ExtractField(line, "status");
    row.runtime_s = std::strtod(ExtractField(line, "runtime_s").c_str(), nullptr);
    row.teps = std::strtod(ExtractField(line, "teps").c_str(), nullptr);
    if (!want_platform.empty() && row.platform != want_platform) continue;
    if (!want_graph.empty() && row.graph != want_graph) continue;
    if (!want_algorithm.empty() && row.algorithm != want_algorithm) continue;
    if (failures_only && row.status == "ok") continue;
    rows.push_back(row);
  }

  if (summary) {
    // Aggregate mean runtime/teps per (platform, algorithm).
    struct Agg {
      double runtime_sum = 0;
      double teps_sum = 0;
      int ok = 0;
      int failed = 0;
    };
    std::map<std::string, Agg> aggs;
    for (const Row& r : rows) {
      Agg& a = aggs[r.platform + "/" + r.algorithm];
      if (r.status == "ok") {
        a.runtime_sum += r.runtime_s;
        a.teps_sum += r.teps;
        ++a.ok;
      } else {
        ++a.failed;
      }
    }
    std::printf("%-24s %6s %6s %12s %12s\n", "platform/algorithm", "ok",
                "fail", "mean rt (s)", "mean kTEPS");
    for (const auto& [key, a] : aggs) {
      std::printf("%-24s %6d %6d %12.3f %12.0f\n", key.c_str(), a.ok,
                  a.failed, a.ok > 0 ? a.runtime_sum / a.ok : 0.0,
                  a.ok > 0 ? a.teps_sum / a.ok / 1e3 : 0.0);
    }
    return 0;
  }

  std::printf("%-12s %-12s %-8s %-10s %12s %12s\n", "platform", "graph",
              "algo", "status", "runtime (s)", "kTEPS");
  for (const Row& r : rows) {
    std::printf("%-12s %-12s %-8s %-10s %12.3f %12.0f\n", r.platform.c_str(),
                r.graph.c_str(), r.algorithm.c_str(), r.status.c_str(),
                r.runtime_s, r.teps / 1e3);
  }
  std::printf("(%zu rows)\n", rows.size());
  return 0;
}
