// results_query — CLI over the results database.
//
// The paper's design "includes a database for Results that is hosted by us
// online and accepts results submissions from Graphalytics users". Locally
// the harness appends one JSON object per benchmark cell to a JSONL file
// (see harness/report.h); this tool is the query side: filter by platform/
// graph/algorithm and print rows or aggregates.
//
//   $ results_query results_database.jsonl [--platform P] [--graph G]
//       [--algorithm A] [--failures] [--summary]
//
// The parser handles exactly the flat JSON the Report Generator emits; it
// is not a general JSON library.

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace {

using gly::Split;
using gly::StringPrintf;

struct Row {
  std::string platform;
  std::string graph;
  std::string algorithm;
  std::string status;
  double runtime_s = 0.0;
  double teps = 0.0;
};

// Extracts `"key":"value"` or `"key":number` from one flat JSON line.
std::string ExtractField(const std::string& line, const std::string& key) {
  std::string needle = "\"" + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  pos += needle.size();
  if (pos < line.size() && line[pos] == '"') {
    size_t end = line.find('"', pos + 1);
    if (end == std::string::npos) return "";
    return line.substr(pos + 1, end - pos - 1);
  }
  size_t end = line.find_first_of(",}", pos);
  return line.substr(pos, end - pos);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <results.jsonl> [--platform P] [--graph G] "
                 "[--algorithm A] [--failures] [--summary]\n",
                 argv[0]);
    return 2;
  }
  std::string path = argv[1];
  std::string want_platform;
  std::string want_graph;
  std::string want_algorithm;
  bool failures_only = false;
  bool summary = false;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--platform") want_platform = next();
    else if (arg == "--graph") want_graph = next();
    else if (arg == "--algorithm") want_algorithm = next();
    else if (arg == "--failures") failures_only = true;
    else if (arg == "--summary") summary = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<Row> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Row row;
    row.platform = ExtractField(line, "platform");
    row.graph = ExtractField(line, "graph");
    row.algorithm = ExtractField(line, "algorithm");
    row.status = ExtractField(line, "status");
    row.runtime_s = std::strtod(ExtractField(line, "runtime_s").c_str(), nullptr);
    row.teps = std::strtod(ExtractField(line, "teps").c_str(), nullptr);
    if (!want_platform.empty() && row.platform != want_platform) continue;
    if (!want_graph.empty() && row.graph != want_graph) continue;
    if (!want_algorithm.empty() && row.algorithm != want_algorithm) continue;
    if (failures_only && row.status == "ok") continue;
    rows.push_back(row);
  }

  if (summary) {
    // Aggregate mean runtime/teps per (platform, algorithm).
    struct Agg {
      double runtime_sum = 0;
      double teps_sum = 0;
      int ok = 0;
      int failed = 0;
    };
    std::map<std::string, Agg> aggs;
    for (const Row& r : rows) {
      Agg& a = aggs[r.platform + "/" + r.algorithm];
      if (r.status == "ok") {
        a.runtime_sum += r.runtime_s;
        a.teps_sum += r.teps;
        ++a.ok;
      } else {
        ++a.failed;
      }
    }
    std::printf("%-24s %6s %6s %12s %12s\n", "platform/algorithm", "ok",
                "fail", "mean rt (s)", "mean kTEPS");
    for (const auto& [key, a] : aggs) {
      std::printf("%-24s %6d %6d %12.3f %12.0f\n", key.c_str(), a.ok,
                  a.failed, a.ok > 0 ? a.runtime_sum / a.ok : 0.0,
                  a.ok > 0 ? a.teps_sum / a.ok / 1e3 : 0.0);
    }
    return 0;
  }

  std::printf("%-12s %-12s %-8s %-10s %12s %12s\n", "platform", "graph",
              "algo", "status", "runtime (s)", "kTEPS");
  for (const Row& r : rows) {
    std::printf("%-12s %-12s %-8s %-10s %12.3f %12.0f\n", r.platform.c_str(),
                r.graph.c_str(), r.algorithm.c_str(), r.status.c_str(),
                r.runtime_s, r.teps / 1e3);
  }
  std::printf("(%zu rows)\n", rows.size());
  return 0;
}
