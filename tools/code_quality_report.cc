// Section 3.5 — "Code Quality."
//
// "in Graphalytics, the code for the reference implementations is
// accompanied by code quality reports, such as code complexity, bugs
// discovered through static analysis, etc."
//
// This tool is the SonarQube stand-in: it statically scans the repository's
// C++ sources and emits a per-module quality report — lines of code,
// comment density, function-length distribution, a cyclomatic-complexity
// proxy (decision-point count), and regression-smell counters (TODO/FIXME,
// raw new/delete, NOLINT). The sec35 bench wraps it so the report is
// regenerated with every benchmark run, mirroring the paper's CI setup.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct FileStats {
  size_t code_lines = 0;
  size_t comment_lines = 0;
  size_t blank_lines = 0;
  size_t decision_points = 0;  // if/for/while/case/&&/||/?
  size_t functions = 0;
  size_t longest_function = 0;
  size_t todos = 0;
  size_t raw_new_delete = 0;
};

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

size_t CountOccurrences(const std::string& line, const std::string& token) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    ++count;
    pos += token.size();
  }
  return count;
}

FileStats AnalyzeFile(const fs::path& path) {
  FileStats stats;
  std::ifstream in(path);
  std::string line;
  bool in_block_comment = false;
  size_t current_function_lines = 0;
  int brace_depth = 0;
  int function_open_depth = 0;
  bool in_function = false;
  while (std::getline(in, line)) {
    // Trim left.
    size_t first = line.find_first_not_of(" \t");
    std::string trimmed =
        first == std::string::npos ? "" : line.substr(first);
    if (trimmed.empty()) {
      ++stats.blank_lines;
      continue;
    }
    if (in_block_comment) {
      ++stats.comment_lines;
      if (Contains(trimmed, "*/")) in_block_comment = false;
      continue;
    }
    if (trimmed.rfind("//", 0) == 0) {
      ++stats.comment_lines;
      if (Contains(trimmed, "TODO") || Contains(trimmed, "FIXME")) {
        ++stats.todos;
      }
      continue;
    }
    if (trimmed.rfind("/*", 0) == 0) {
      ++stats.comment_lines;
      if (!Contains(trimmed, "*/")) in_block_comment = true;
      continue;
    }
    ++stats.code_lines;
    for (const char* kw : {"if (", "for (", "while (", "case ", "switch ("}) {
      stats.decision_points += CountOccurrences(trimmed, kw);
    }
    stats.decision_points += CountOccurrences(trimmed, "&&");
    stats.decision_points += CountOccurrences(trimmed, "||");
    stats.decision_points += CountOccurrences(trimmed, " ? ");
    if (Contains(trimmed, "new ") || Contains(trimmed, "delete ")) {
      ++stats.raw_new_delete;
    }
    // Rough function tracking: a '{' on a line that also closes a
    // parameter list (contains ')') opens a function body at whatever
    // nesting depth (free function, member, lambda); the body ends when
    // the brace depth returns to the opening level.
    bool line_has_paren = Contains(line, ")");
    for (char c : trimmed) {
      if (c == '{') {
        if (!in_function && line_has_paren && !Contains(trimmed, "= {")) {
          in_function = true;
          function_open_depth = brace_depth;
          current_function_lines = 0;
          ++stats.functions;
        }
        ++brace_depth;
      } else if (c == '}') {
        --brace_depth;
        if (brace_depth < 0) brace_depth = 0;
        if (in_function && brace_depth <= function_open_depth) {
          stats.longest_function =
              std::max(stats.longest_function, current_function_lines);
          in_function = false;
        }
      }
    }
    if (in_function) ++current_function_lines;
  }
  return stats;
}

std::string ModuleOf(const fs::path& path, const fs::path& root) {
  fs::path rel = fs::relative(path, root);
  auto it = rel.begin();
  if (it == rel.end()) return "?";
  std::string top = it->string();
  if (top == "src" && ++it != rel.end()) return "src/" + it->string();
  return top;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = argc > 1 ? fs::path(argv[1]) : fs::current_path();
  std::map<std::string, FileStats> modules;
  size_t files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h" && ext != ".cpp") continue;
    std::string p = entry.path().string();
    if (p.find("/build/") != std::string::npos) continue;
    FileStats fstats = AnalyzeFile(entry.path());
    FileStats& m = modules[ModuleOf(entry.path(), root)];
    m.code_lines += fstats.code_lines;
    m.comment_lines += fstats.comment_lines;
    m.blank_lines += fstats.blank_lines;
    m.decision_points += fstats.decision_points;
    m.functions += fstats.functions;
    m.longest_function = std::max(m.longest_function, fstats.longest_function);
    m.todos += fstats.todos;
    m.raw_new_delete += fstats.raw_new_delete;
    ++files;
  }

  std::printf("code quality report (%zu files under %s)\n", files,
              root.string().c_str());
  std::printf("%-18s %8s %8s %8s %8s %10s %8s %6s\n", "module", "code",
              "comment", "cmt%", "funcs", "complex/f", "maxfn", "todo");
  std::printf("%s\n", std::string(84, '-').c_str());
  FileStats total;
  for (const auto& [module, m] : modules) {
    double comment_pct =
        m.code_lines + m.comment_lines > 0
            ? 100.0 * static_cast<double>(m.comment_lines) /
                  static_cast<double>(m.code_lines + m.comment_lines)
            : 0.0;
    double complexity_per_function =
        m.functions > 0 ? static_cast<double>(m.decision_points) /
                              static_cast<double>(m.functions)
                        : 0.0;
    std::printf("%-18s %8zu %8zu %7.1f%% %8zu %10.1f %8zu %6zu\n",
                module.c_str(), m.code_lines, m.comment_lines, comment_pct,
                m.functions, complexity_per_function, m.longest_function,
                m.todos);
    total.code_lines += m.code_lines;
    total.comment_lines += m.comment_lines;
    total.decision_points += m.decision_points;
    total.functions += m.functions;
    total.todos += m.todos;
    total.raw_new_delete += m.raw_new_delete;
  }
  std::printf("%s\n", std::string(84, '-').c_str());
  std::printf("%-18s %8zu %8zu %7.1f%% %8zu %10.1f %8s %6zu\n", "TOTAL",
              total.code_lines, total.comment_lines,
              100.0 * static_cast<double>(total.comment_lines) /
                  static_cast<double>(total.code_lines + total.comment_lines),
              total.functions,
              total.functions > 0
                  ? static_cast<double>(total.decision_points) /
                        static_cast<double>(total.functions)
                  : 0.0,
              "-", total.todos);
  std::printf("\nregression smells: TODO/FIXME=%zu raw new/delete=%zu\n",
              total.todos, total.raw_new_delete);
  return 0;
}
