// graphalytics_run — the benchmark launcher.
//
// "Run the benchmark. Graphalytics includes a Unix shell script that
// triggers the execution of the benchmark. After the execution completes,
// the benchmark report is available in the local file system." (§2.3)
//
//   $ graphalytics_run benchmark.properties
//   $ graphalytics_run --resume benchmark.properties      # continue a run
//   $ graphalytics_run --jobs 4 benchmark.properties      # concurrent cells
//   $ graphalytics_run --example > benchmark.properties   # starter config
//
// --resume re-reads the completion journal (<report.dir>/journal.jsonl by
// default) and re-executes only the cells that did not finish cleanly —
// the rest are reported from the journal, marked "resumed".
//
// --jobs N runs up to N matrix cells concurrently (DESIGN.md §12): cells
// sharing a (platform, graph) pair reuse one loaded graph, admission is
// gated on `harness.memory_budget_mb`, and the journal stays equivalent to
// a serial run's. Equal to setting `harness.jobs = N` in the config.
//
// See harness/run_config.h for the full properties dialect.

#include <csignal>
#include <cstdio>
#include <cstring>

#include "common/cancellation.h"
#include "common/config.h"
#include "harness/run_config.h"

namespace {

// SIGINT arms this token; the harness cancels the in-flight cell with
// kHarnessStop, journals what finished, and returns. CancelToken::Cancel
// (reason-only overload) is async-signal-safe: one compare_exchange on an
// atomic, no locks, no allocation.
gly::CancelToken g_stop;

extern "C" void HandleSigint(int /*sig*/) {
  g_stop.Cancel(gly::CancelReason::kHarnessStop);
}

const char kExampleConfig[] = R"(# graphalytics_run starter configuration
graphs = snb, g500
graph.snb.source = datagen
graph.snb.persons = 10000
graph.snb.degree_spec = facebook:mean=18
graph.snb.seed = 42
graph.snb.bfs_source = 0
graph.g500.source = rmat
graph.g500.scale = 12
graph.g500.edge_factor = 16

platforms = giraph, graphx, mapreduce, neo4j, reference
giraph.workers = 8
graphx.workers = 8
neo4j.memory_budget_mb = 256

algorithms = all
cd.max_iterations = 10
evo.new_vertices = 16

report.dir = graphalytics-report
validate = true
monitor = true

# Observability (see DESIGN.md, "Observability model"): set a directory (or
# pass --trace-dir) to export trace.json — open it in chrome://tracing or
# https://ui.perfetto.dev — plus metrics.jsonl and one trace-<cell>.json
# per benchmark cell (valid at any --jobs level). Off by default; the
# disabled hot path is one atomic load per would-be span.
# trace.dir = graphalytics-report/trace

# Profiling (see DESIGN.md §14): profile.mode attaches hardware counters
# (IPC, cache/branch miss rates — getrusage fallback when perf_event_open
# is unavailable) to trace spans and/or runs a sampling CPU profiler whose
# folded stacks are written per cell. Artifacts: profile.json (critical
# path, worker utilization, top self-time) + profile.folded next to
# trace.json. Also reachable as --profile [mode] on the command line.
# profile.mode = off         # off | counters | sampler | full
# profile.interval_us = 2000 # sampling period for sampler/full

# ETL (see DESIGN.md, "ETL performance"): parallel parse + CSR build, and
# optional degree-descending relabeling for traversal locality. Outputs and
# validation always speak original vertex ids; CD/EVO cells are refused on
# reordered graphs (recorded failures) because their dynamics are id-seeded.
etl.threads = 1            # 0 = all hardware threads
graph.reorder = none       # degree | none (per-graph: graph.<name>.reorder)

# Robustness: per-cell wall-clock timeout (0 = none), bounded retry with
# exponential backoff. A timed-out or crashed cell is recorded as a
# failure ("missing value") instead of aborting the run. Timed-out cells
# are cooperatively cancelled and their attempt thread joined within
# cancel_grace_s; stall_timeout_s cancels a cell whose progress heartbeat
# (superstep / job / operator / import batch) stops advancing, catching
# livelock even without a wall-clock timeout. Ctrl-C cancels the in-flight
# cell the same way and journals what finished.
timeout_s = 0
stall_timeout_s = 0          # 0 = stall watchdog off
cancel_grace_s = 5
max_attempts = 1
retry_backoff_s = 0.5

# Recovery (see DESIGN.md, "Recovery model"):
#  - giraph.checkpoint_interval = 4   # Pregel checkpoint every 4 supersteps
#  - mapreduce.checkpointing = true   # persist map-stage spill manifests
#  - resume = true                    # or pass --resume on the command line
# Per-cell completion is journaled to <report.dir>/journal.jsonl (override
# with `journal = path`); with resume, finished cells are not re-executed.

# Concurrent scheduling (see DESIGN.md §12): run up to harness.jobs matrix
# cells in flight (or pass --jobs). Cells on the same (platform, graph)
# share one loaded graph; a new load is admitted only when its estimated
# footprint fits harness.memory_budget_mb (0 = no limit) — oversubscribed
# loads queue instead of OOMing. The journal, statuses, and validation are
# equivalent to a serial run's.
harness.jobs = 1
harness.memory_budget_mb = 0
harness.graph_cache = true
)";

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--resume] [--jobs N] [--trace-dir <dir>] "
               "[--profile [mode]] <benchmark.properties>\n"
               "       %s --example   # print a starter configuration\n"
               "  --resume           reuse cells already journaled as "
               "finished\n"
               "  --jobs N           run up to N matrix cells concurrently\n"
               "                     (harness.jobs; 1 = serial)\n"
               "  --trace-dir <dir>  write trace.json (Chrome tracing) and\n"
               "                     metrics.jsonl per run, plus one\n"
               "                     trace-<cell>.json per benchmark cell\n"
               "                     (valid at any --jobs level)\n"
               "  --profile [mode]   profile the run: counters | sampler |\n"
               "                     full (default full). Writes profile.json\n"
               "                     + folded stacks next to the traces and\n"
               "                     attaches counter deltas to spans\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  bool resume = false;
  const char* trace_dir = nullptr;
  const char* jobs = nullptr;
  const char* profile_mode = nullptr;
  const char* config_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--example") == 0) {
      std::fputs(kExampleConfig, stdout);
      return 0;
    }
    if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      if (i + 1 >= argc) {
        PrintUsage(argv[0]);
        return 2;
      }
      jobs = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-dir") == 0) {
      if (i + 1 >= argc) {
        PrintUsage(argv[0]);
        return 2;
      }
      trace_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      // Optional value: bare --profile means the full pipeline.
      if (i + 1 < argc && argv[i + 1][0] != '-' &&
          (std::strcmp(argv[i + 1], "off") == 0 ||
           std::strcmp(argv[i + 1], "counters") == 0 ||
           std::strcmp(argv[i + 1], "sampler") == 0 ||
           std::strcmp(argv[i + 1], "full") == 0)) {
        profile_mode = argv[++i];
      } else {
        profile_mode = "full";
      }
    } else if (config_path == nullptr) {
      config_path = argv[i];
    } else {
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (config_path == nullptr) {
    PrintUsage(argv[0]);
    return 2;
  }
  auto config = gly::Config::LoadFile(config_path);
  if (!config.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 config.status().ToString().c_str());
    return 1;
  }
  if (resume) config->SetBool("resume", true);
  if (jobs != nullptr) config->Set("harness.jobs", jobs);
  if (trace_dir != nullptr) config->Set("trace.dir", trace_dir);
  if (profile_mode != nullptr) config->Set("profile.mode", profile_mode);
  std::signal(SIGINT, HandleSigint);
  auto run = gly::harness::RunFromConfig(*config, &g_stop);
  if (!run.ok()) {
    std::fprintf(stderr, "benchmark error: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::fputs(run->report_text.c_str(), stdout);

  // Robustness summary on stderr: which cells were retried, timed out,
  // resumed from the journal, or recovered from a checkpoint.
  unsigned long long retried = 0, timed_out = 0, failed = 0, resumed = 0;
  unsigned long long cancelled = 0, stalled = 0;
  unsigned long long recoveries = 0;
  for (const auto& r : run->results) {
    if (r.attempts > 1) ++retried;
    if (r.timed_out) ++timed_out;
    if (r.cancelled) ++cancelled;
    if (r.stalled) ++stalled;
    if (!r.status.ok()) ++failed;
    if (r.resumed) ++resumed;
    recoveries += r.recoveries;
  }
  // Scheduler summary on stderr whenever concurrency was requested — the
  // logged evidence that a --jobs run actually overlapped cells (peak
  // in-flight, graph-cache hits, queueing) and its wall clock.
  if (run->scheduler.jobs > 1) {
    std::fprintf(stderr, "scheduler: %s\n",
                 gly::harness::SchedulerSummary(run->scheduler).c_str());
  }
  if (retried + timed_out + failed + cancelled > 0) {
    std::fprintf(stderr,
                 "robustness: %llu cell(s) failed, %llu retried, "
                 "%llu timed out, %llu cancelled (%llu by the stall "
                 "watchdog; see report details)\n",
                 failed, retried, timed_out, cancelled, stalled);
  }
  if (gly::Cancelled(&g_stop)) {
    std::fprintf(stderr,
                 "interrupted: run stopped by SIGINT; finished cells are "
                 "journaled — rerun with --resume to continue\n");
  }
  if (resumed + recoveries > 0) {
    std::fprintf(stderr,
                 "recovery: %llu cell(s) resumed from journal, "
                 "%llu checkpoint recoveries\n",
                 resumed, recoveries);
  }

  if (!run->report_dir.empty()) {
    std::printf("\nreport written to %s/ (report.txt, results.csv, "
                "results.jsonl)\n",
                run->report_dir.c_str());
  }
  // Exit code reflects validation: any INVALID cell fails the run. Cells
  // whose validation never ran (validate = false, or the cell failed
  // before producing output) are reported as "untested", not as failures.
  for (const auto& r : run->results) {
    if (r.validation.IsValidationFailed()) return 3;
  }
  return 0;
}
