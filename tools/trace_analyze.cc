// trace_analyze — post-run trace analytics (DESIGN.md §14).
//
// Reads a Chrome-tracing trace.json the harness exported, rebuilds the
// span forest, and computes the critical path, per-worker utilization,
// and the top-K self-time table. Output is profile.json (schema v1) on
// stdout or to a file, or a human-readable summary:
//
//   $ trace_analyze report/trace/trace.json                 # human summary
//   $ trace_analyze report/trace/trace.json --json          # profile.json
//   $ trace_analyze report/trace/trace.json --out profile.json
//   $ trace_analyze report/trace/trace-giraph-g500-BFS.json \
//       --root harness.cell --top-k 5
//
// This is the offline twin of what a `--profile` run computes inline: the
// same AnalyzeTrace pass, applicable to any trace.json you still have even
// if the run itself was not profiled.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/trace_analysis.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.json> [--root NAME] [--top-k K] "
               "[--json] [--out <profile.json>]\n"
               "  --root NAME  critical-path root span name (default: the\n"
               "               longest top-level span)\n"
               "  --top-k K    self-time table size (default 10, 0 = all)\n"
               "  --json       print profile.json instead of the summary\n"
               "  --out FILE   write profile.json to FILE (implies summary\n"
               "               on stdout)\n",
               argv0);
}

void PrintSummary(const gly::trace::TraceAnalysis& analysis) {
  std::printf("wall:           %.4f s over %zu completed spans\n",
              analysis.wall_seconds, analysis.completed_spans);
  std::printf("critical path:  %.4f s from root \"%s\"\n",
              analysis.critical_path_seconds, analysis.root.c_str());
  for (size_t i = 0; i < analysis.critical_path.size(); ++i) {
    const auto& step = analysis.critical_path[i];
    std::printf("  %*s%-32s tid=%u span=%.4fs self=%.4fs\n", (int)(2 * i),
                "", step.name.c_str(), step.tid, step.span_seconds,
                step.self_seconds);
  }
  if (!analysis.workers.empty()) {
    std::printf("workers:\n");
    for (const auto& w : analysis.workers) {
      std::printf("  tid=%-4u busy=%.4fs idle=%.4fs util=%.0f%%\n", w.tid,
                  w.busy_seconds, w.idle_seconds, w.utilization * 100.0);
    }
  }
  if (!analysis.self_time.empty()) {
    std::printf("top self time:\n");
    for (const auto& entry : analysis.self_time) {
      std::printf("  %-32s %12.4f s  x%llu\n", entry.name.c_str(),
                  entry.self_seconds, (unsigned long long)entry.count);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  const char* out_path = nullptr;
  bool emit_json = false;
  gly::trace::AnalyzeOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      options.root = argv[++i];
    } else if (std::strcmp(argv[i], "--top-k") == 0 && i + 1 < argc) {
      options.top_k = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      emit_json = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (trace_path == nullptr && argv[i][0] != '-') {
      trace_path = argv[i];
    } else {
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (trace_path == nullptr) {
    PrintUsage(argv[0]);
    return 2;
  }

  std::ifstream in(trace_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", trace_path);
    return 1;
  }
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  auto events = gly::trace::ParseChromeTraceJson(json);
  if (!events.ok()) {
    std::fprintf(stderr, "%s: %s\n", trace_path,
                 events.status().ToString().c_str());
    return 1;
  }

  gly::trace::TraceAnalysis analysis =
      gly::trace::AnalyzeTrace(*events, options);
  // An offline analysis has no sampler; profile.json records mode "off".
  std::string profile_json =
      gly::trace::ProfileJson(analysis, gly::trace::SamplerSummary{}, {});

  if (out_path != nullptr) {
    std::ofstream out(out_path);
    out << profile_json;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path);
      return 1;
    }
  }
  if (emit_json && out_path == nullptr) {
    std::fputs(profile_json.c_str(), stdout);
  } else {
    PrintSummary(analysis);
    if (out_path != nullptr) std::printf("wrote %s\n", out_path);
  }
  return 0;
}
