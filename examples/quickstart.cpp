// Quickstart: benchmark one platform on one generated graph in ~40 lines.
//
// Mirrors the paper's four user steps (§2.3): add graphs (we generate one
// with Datagen), configure the platform, choose the workload, run the
// benchmark — then print the report.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "common/config.h"
#include "datagen/social_datagen.h"
#include "graph/graph.h"
#include "harness/core.h"
#include "harness/report.h"

int main() {
  using namespace gly;

  // 1. Add graphs: generate a small social network with Datagen.
  datagen::SocialDatagenConfig datagen_config;
  datagen_config.num_persons = 5000;
  datagen_config.degree_spec = "facebook:mean=15";
  datagen_config.seed = 42;
  auto generated = datagen::SocialDatagen(datagen_config).Generate(nullptr);
  generated.status().Check();
  auto graph = GraphBuilder::Undirected(generated->edges);
  graph.status().Check();
  std::printf("generated graph: %u vertices, %llu edges\n",
              graph->num_vertices(),
              static_cast<unsigned long long>(graph->num_edges()));

  // 2. Configure the platform(s).
  harness::RunSpec spec;
  spec.platforms = {"giraph", "neo4j"};
  Config platform_config;
  platform_config.SetInt("giraph.workers", 4);
  spec.platform_config = platform_config;

  // 3. Choose the workload.
  harness::DatasetSpec dataset;
  dataset.name = "quickstart";
  dataset.graph = &*graph;
  dataset.params.bfs.source = 0;
  spec.datasets.push_back(dataset);
  spec.algorithms = {AlgorithmKind::kBfs, AlgorithmKind::kConn,
                     AlgorithmKind::kStats};

  // 4. Run the benchmark; every output is validated against the reference
  //    implementation by the harness.
  auto results = harness::RunBenchmark(spec);
  results.status().Check();

  std::printf("\n%s\n",
              harness::RenderFullReport(platform_config, *results).c_str());
  return 0;
}
