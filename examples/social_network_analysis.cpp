// Social-network analysis scenario (the paper's motivating domain).
//
// A product team wants to understand a social graph before picking a
// processing platform: generate an SNB-like network with Datagen, measure
// its structure (Table 1's characteristics), detect communities (CD),
// compute reachability from a seed user (BFS), and forecast growth with the
// forest-fire model (EVO) — all through the public API, on the Pregel
// platform, with validated outputs.
//
//   $ ./build/examples/social_network_analysis

#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/degree_distribution.h"
#include "analysis/metrics.h"
#include "common/string_util.h"
#include "datagen/social_datagen.h"
#include "harness/validator.h"
#include "pregel/algorithms.h"

int main() {
  using namespace gly;

  // Generate the network.
  datagen::SocialDatagenConfig config;
  config.num_persons = 20000;
  config.degree_spec = "facebook:mean=20";
  config.window_size = 128;
  config.seed = 2026;
  auto generated = datagen::SocialDatagen(config).Generate(nullptr);
  generated.status().Check();
  auto graph_result = GraphBuilder::Undirected(generated->edges);
  graph_result.status().Check();
  const Graph& graph = *graph_result;

  // Structure: the Table 1 characteristics plus the degree model ranking.
  ThreadPool pool(HardwareThreads());
  GraphCharacteristics chars = ComputeCharacteristics(graph, &pool);
  std::printf("network structure\n");
  std::printf("  vertices:             %llu\n",
              static_cast<unsigned long long>(chars.num_vertices));
  std::printf("  edges:                %llu\n",
              static_cast<unsigned long long>(chars.num_edges));
  std::printf("  global clustering:    %.4f\n",
              chars.global_clustering_coefficient);
  std::printf("  average clustering:   %.4f\n",
              chars.average_clustering_coefficient);
  std::printf("  degree assortativity: %.4f\n", chars.degree_assortativity);
  auto fits = FitAllModels(DegreeHistogram(graph));
  std::printf("  degree model ranking: %s (best)\n",
              fits[0].model_description.c_str());

  // Communities via CD on the Pregel platform.
  pregel::EngineConfig engine_config;
  engine_config.num_workers = 8;
  pregel::Engine engine(engine_config);
  CdParams cd_params{8, 0.05};
  auto cd = pregel::RunCd(engine, graph, cd_params);
  cd.status().Check();
  GLY_CHECK_OK(harness::ValidateOutput(graph, AlgorithmKind::kCd,
                                       {{}, cd_params, {}, {}}, *cd));
  std::map<int64_t, uint64_t> community_sizes;
  for (int64_t label : cd->vertex_values) ++community_sizes[label];
  std::vector<uint64_t> sizes;
  for (const auto& [label, size] : community_sizes) sizes.push_back(size);
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("\ncommunity detection (%u LPA iterations)\n",
              cd_params.max_iterations);
  std::printf("  communities found:    %zu\n", community_sizes.size());
  std::printf("  largest communities:  ");
  for (size_t i = 0; i < std::min<size_t>(5, sizes.size()); ++i) {
    std::printf("%llu ", static_cast<unsigned long long>(sizes[i]));
  }
  std::printf("\n");

  // Reach of user 0: BFS levels.
  auto bfs = pregel::RunBfs(engine, graph, BfsParams{0});
  bfs.status().Check();
  std::map<int64_t, uint64_t> level_counts;
  for (int64_t d : bfs->vertex_values) {
    if (d != kUnreachable) ++level_counts[d];
  }
  std::printf("\nreach of user 0 (BFS levels)\n");
  uint64_t cumulative = 0;
  for (const auto& [level, count] : level_counts) {
    cumulative += count;
    std::printf("  <= %lld hops: %llu users (%.1f%%)\n",
                static_cast<long long>(level),
                static_cast<unsigned long long>(cumulative),
                100.0 * static_cast<double>(cumulative) /
                    graph.num_vertices());
    if (level >= 6) break;
  }

  // Growth forecast: forest-fire evolution.
  EvoParams evo_params;
  evo_params.num_new_vertices = 200;
  evo_params.p_forward = 0.35;
  auto evo = pregel::RunEvo(engine, graph, evo_params);
  evo.status().Check();
  std::printf("\ngrowth forecast (forest-fire, %u new users)\n",
              evo_params.num_new_vertices);
  std::printf("  new edges created:    %zu (%.1f per new user)\n",
              evo->new_edges.num_edges(),
              static_cast<double>(evo->new_edges.num_edges()) /
                  evo_params.num_new_vertices);
  return 0;
}
