// Platform comparison scenario — the benchmark's raison d'être.
//
// "Selecting the right platform for a particular application is a
// difficult process, because performance depends not only on the
// processing platform, but also on the workload." This example runs a
// user-chosen algorithm on every registered platform over two structurally
// different graphs and prints runtime, TEPS, validation, and the
// per-platform metrics the harness collects — the comparison a platform
// selector needs.
//
//   $ ./build/examples/platform_comparison [algorithm]
//     algorithm: stats | bfs | conn | cd | evo   (default conn)

#include <cstdio>
#include <string>

#include "common/config.h"
#include "common/string_util.h"
#include "datagen/rmat.h"
#include "datagen/social_datagen.h"
#include "harness/core.h"
#include "harness/report.h"

int main(int argc, char** argv) {
  using namespace gly;

  AlgorithmKind algorithm = AlgorithmKind::kConn;
  if (argc > 1) {
    auto parsed = ParseAlgorithmKind(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "unknown algorithm '%s' (stats|bfs|conn|cd|evo)\n",
                   argv[1]);
      return 1;
    }
    algorithm = *parsed;
  }

  // Two graphs with different structure: a social network and a skewed
  // R-MAT graph.
  datagen::SocialDatagenConfig social_config;
  social_config.num_persons = 8000;
  social_config.degree_spec = "facebook:mean=16";
  social_config.seed = 11;
  auto social_edges = datagen::SocialDatagen(social_config).Generate(nullptr);
  social_edges.status().Check();
  auto social = GraphBuilder::Undirected(social_edges->edges);
  social.status().Check();

  datagen::RmatConfig rmat_config;
  rmat_config.scale = 12;
  rmat_config.edge_factor = 8;
  auto rmat_edges = datagen::RmatGenerator(rmat_config).Generate(nullptr);
  rmat_edges.status().Check();
  auto rmat = GraphBuilder::Undirected(*rmat_edges);
  rmat.status().Check();

  harness::RunSpec spec;
  spec.platforms = harness::RegisteredPlatforms();
  Config config;
  config.SetInt("giraph.workers", 8);
  config.SetInt("graphx.workers", 8);
  config.SetInt("mapreduce.workers", 8);
  spec.platform_config = config;
  AlgorithmParams params;
  params.bfs.source = 1;
  params.cd = CdParams{5, 0.05};
  params.evo.num_new_vertices = 24;
  spec.datasets.push_back({"social", &*social, params});
  spec.datasets.push_back({"rmat", &*rmat, params});
  spec.algorithms = {algorithm};

  std::printf("comparing %zu platforms on %s...\n\n", spec.platforms.size(),
              AlgorithmKindName(algorithm).c_str());
  auto results = harness::RunBenchmark(spec);
  results.status().Check();

  std::printf("%-8s %-12s %12s %12s %10s  %s\n", "graph", "platform",
              "runtime", "kTEPS", "validated", "metrics");
  for (const auto& r : *results) {
    if (!r.status.ok()) {
      std::printf("%-8s %-12s %12s %12s %10s  %s\n", r.graph.c_str(),
                  r.platform.c_str(), "-", "-", "-",
                  r.status.ToString().c_str());
      continue;
    }
    std::string metrics;
    for (const auto& [k, v] : r.platform_metrics) {
      metrics += k + "=" + v + " ";
    }
    std::printf("%-8s %-12s %12s %12.0f %10s  %s\n", r.graph.c_str(),
                r.platform.c_str(),
                FormatSeconds(r.runtime_seconds).c_str(), r.teps / 1e3,
                r.validation.ok() ? "yes" : "NO", metrics.c_str());
  }
  std::printf("\nnote: runtimes exclude ETL (dataset loading), matching the "
              "paper's metric.\n");
  return 0;
}
