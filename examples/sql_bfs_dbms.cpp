// Graph traversal inside a DBMS — the §3.4 scenario as an application.
//
// An analyst with data in a relational column store wants reachability
// ("how many people can person X reach?") without exporting to a graph
// platform: build the sp_edge table, run the transitive-closure operator
// for a few sources, and inspect the execution profile (random lookups,
// MTEPS, per-operator time) that a DBMS EXPLAIN ANALYZE would show.
//
//   $ ./build/examples/sql_bfs_dbms

#include <cstdio>

#include "columnstore/edge_table.h"
#include "graph/graph.h"
#include "columnstore/transitive.h"
#include "common/string_util.h"
#include "datagen/social_datagen.h"

int main() {
  using namespace gly;
  using namespace gly::columnstore;

  // Load a social network into the sp_edge table (both orientations, as in
  // a symmetric person-knows-person relation).
  datagen::SocialDatagenConfig config;
  config.num_persons = 40000;
  config.degree_spec = "facebook:mean=20";
  config.seed = 5;
  auto generated = datagen::SocialDatagen(config).Generate(nullptr);
  generated.status().Check();
  auto graph = GraphBuilder::Undirected(generated->edges);
  graph.status().Check();
  EdgeList arcs(graph->num_vertices());
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    for (VertexId w : graph->OutNeighbors(v)) arcs.Add(v, w);
  }
  auto table = EdgeTable::Build(arcs);
  table.status().Check();
  std::printf("sp_edge: %llu rows, compressed %s of %s raw\n\n",
              static_cast<unsigned long long>(table->num_rows()),
              FormatBytes(table->compressed_bytes()).c_str(),
              FormatBytes(table->raw_bytes()).c_str());

  std::printf("query template:\n"
              "  select count(*) from (select spe_to from\n"
              "    (select transitive t_in (1) t_out (2) t_distinct\n"
              "       spe_from, spe_to from sp_edge) t1\n"
              "    where spe_from = ?) t2;\n\n");

  TransitiveConfig query_config;
  query_config.num_partitions = HardwareThreads();
  std::printf("%8s %10s %12s %12s %8s | %6s %6s %6s\n", "source", "count",
              "lookups", "endpoints", "MTEPS", "hash", "exch", "col");
  for (VertexId source : {420u, 1u, 31337u}) {
    auto profile = TransitiveCount(*table, source, query_config);
    profile.status().Check();
    std::printf("%8u %10llu %12llu %12llu %8.1f | %5.0f%% %5.0f%% %5.0f%%\n",
                source,
                static_cast<unsigned long long>(profile->distinct_reached),
                static_cast<unsigned long long>(profile->random_lookups),
                static_cast<unsigned long long>(
                    profile->edge_endpoints_visited),
                profile->mteps, 100 * profile->hash_fraction,
                100 * profile->exchange_fraction,
                100 * profile->column_fraction);
  }
  std::printf("\n(the paper's Virtuoso profile on SNB 1000: 41.3 MTEPS; "
              "33%% hash / 10%% exchange / 57%% column access)\n");
  return 0;
}
