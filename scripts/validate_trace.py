#!/usr/bin/env python3
"""Validate observability artifacts against their documented schemas.

Usage:
    scripts/validate_trace.py FILE [FILE...]

Files ending in .json are checked as Chrome trace-event documents
(DESIGN.md §10): a top-level object with a "traceEvents" array whose
elements carry name/ph/ts/pid/tid, whose B/E events nest correctly per
thread, and (when present) whose metadata declares schema_version 1 and
kind "gly.trace".

Files ending in .jsonl are checked as metrics exports: a schema header
line {"schema_version": 1, "kind": "gly.metrics"} followed by one metric
object per line, each a counter ("value"), gauge ("value"), or histogram
(count/min/max/mean/p50/p95/p99/items, where items is a list of
[value, count] pairs summing to count).

Exit status: 0 when every file validates, 1 on the first violation,
2 on usage errors. Independent of the C++ validator on purpose: the C++
and Python checkers agreeing on the committed samples is the
cross-implementation test of the schema.
"""

import json
import sys


def fail(path, what):
    print(f"validate_trace: {path}: {what}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(path, f"cannot parse: {exc}")
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, 'no "traceEvents" array')
    metadata = doc.get("metadata", {})
    if metadata:
        if metadata.get("schema_version") != 1:
            fail(path, f"metadata.schema_version is "
                       f"{metadata.get('schema_version')!r}, want 1")
        if metadata.get("kind") != "gly.trace":
            fail(path, f"metadata.kind is {metadata.get('kind')!r}, "
                       f"want 'gly.trace'")

    stacks = {}  # tid -> [span names]
    completed = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(path, f"traceEvents[{i}] missing {key!r}")
        if not isinstance(event["name"], str) or not isinstance(
                event["ph"], str):
            fail(path, f"traceEvents[{i}]: name/ph must be strings")
        if not isinstance(event["ts"], (int, float)):
            fail(path, f"traceEvents[{i}]: ts must be a number")
        ph, tid, name = event["ph"], event["tid"], event["name"]
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
        elif ph == "E":
            if not stack:
                fail(path, f"traceEvents[{i}]: 'E' for {name!r} on tid "
                           f"{tid} with no open span")
            if stack[-1] != name:
                fail(path, f"traceEvents[{i}]: 'E' for {name!r} closes "
                           f"{stack[-1]!r} on tid {tid}")
            stack.pop()
            completed += 1
        elif ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                fail(path, f"traceEvents[{i}]: instant event without a "
                           f"valid scope ('s')")
    open_spans = sum(len(s) for s in stacks.values())
    print(f"validate_trace: {path}: ok — {len(events)} events, "
          f"{completed} completed spans, {open_spans} left open")


def validate_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        fail(path, f"cannot read: {exc}")
    if not lines:
        fail(path, "empty document (missing schema header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        fail(path, f"header is not JSON: {exc}")
    if header.get("schema_version") != 1 or header.get("kind") != \
            "gly.metrics":
        fail(path, f"bad schema header: {lines[0]!r}")

    names = set()
    for i, line in enumerate(lines[1:], start=2):
        try:
            metric = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(path, f"line {i} is not JSON: {exc}")
        name = metric.get("name")
        mtype = metric.get("type")
        if not isinstance(name, str) or not name:
            fail(path, f"line {i}: missing metric name")
        if name in names:
            fail(path, f"line {i}: duplicate metric {name!r}")
        names.add(name)
        if mtype in ("counter", "gauge"):
            if not isinstance(metric.get("value"), (int, float)):
                fail(path, f"line {i}: {name!r} has no numeric value")
            if mtype == "counter" and (not isinstance(metric["value"], int)
                                       or metric["value"] < 0):
                fail(path, f"line {i}: counter {name!r} must be a "
                           f"non-negative integer")
        elif mtype == "histogram":
            for key in ("count", "min", "max", "mean", "p50", "p95", "p99",
                        "items"):
                if key not in metric:
                    fail(path, f"line {i}: histogram {name!r} missing "
                               f"{key!r}")
            items = metric["items"]
            if not isinstance(items, list) or any(
                    not (isinstance(p, list) and len(p) == 2) for p in items):
                fail(path, f"line {i}: histogram {name!r} items must be "
                           f"[value, count] pairs")
            if sum(count for _, count in items) != metric["count"]:
                fail(path, f"line {i}: histogram {name!r} item counts do "
                           f"not sum to count")
        else:
            fail(path, f"line {i}: unknown metric type {mtype!r}")
    print(f"validate_trace: {path}: ok — {len(names)} metrics")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        if path.endswith(".jsonl"):
            validate_metrics(path)
        else:
            validate_trace(path)


if __name__ == "__main__":
    main()
