#!/usr/bin/env python3
"""Validate observability artifacts against their documented schemas.

Usage:
    scripts/validate_trace.py FILE [FILE...]

Files ending in .json are checked as Chrome trace-event documents
(DESIGN.md §10): a top-level object with a "traceEvents" array whose
elements carry name/ph/ts/pid/tid, whose B/E events nest correctly per
thread, and (when present) whose metadata declares schema_version 1 and
kind "gly.trace".

Files ending in .jsonl are checked as metrics exports: a schema header
line {"schema_version": 1, "kind": "gly.metrics"} followed by one metric
object per line, each a counter ("value"), gauge ("value"), or histogram
(count/min/max/mean/p50/p95/p99/items, where items is a list of
[value, count] pairs summing to count).

JSON files whose top level declares kind "gly.profile" are checked as
profile.json documents (DESIGN.md §14): schema_version 1, numeric
wall/critical-path seconds with critical_path_seconds <= wall_seconds,
critical_path / workers / self_time arrays with typed fields, a sampler
block, and folded stack lines ("frame;frame count") whose counts sum to
sampler.samples.

Files ending in .folded are checked as flamegraph folded-stack syntax:
every line is "frame(;frame)* count" with no stray separators.

Exit status: 0 when every file validates, 1 on the first violation,
2 on usage errors. Independent of the C++ validator on purpose: the C++
and Python checkers agreeing on the committed samples is the
cross-implementation test of the schema.
"""

import json
import sys


def fail(path, what):
    print(f"validate_trace: {path}: {what}", file=sys.stderr)
    sys.exit(1)


def check_folded_line(path, lineno, line):
    """One folded-stack line: "frame(;frame)* count"."""
    space = line.rfind(" ")
    if space <= 0:
        fail(path, f"folded line {lineno}: no count separator: {line!r}")
    stack, count = line[:space], line[space + 1:]
    if not count.isdigit() or int(count) < 1:
        fail(path, f"folded line {lineno}: count {count!r} is not a "
                   f"positive integer")
    frames = stack.split(";")
    if any(not f or " " in f for f in frames):
        fail(path, f"folded line {lineno}: empty frame or space inside a "
                   f"frame: {stack!r}")
    return int(count)


def validate_folded(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        fail(path, f"cannot read: {exc}")
    total = 0
    for i, line in enumerate(lines, start=1):
        total += check_folded_line(path, i, line)
    print(f"validate_trace: {path}: ok — {len(lines)} stacks, "
          f"{total} samples")


def require_number(path, doc, key, parent="profile"):
    value = doc.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{parent}.{key} is {value!r}, want a number")
    return value


def validate_profile(path, doc):
    if doc.get("schema_version") != 1:
        fail(path, f"schema_version is {doc.get('schema_version')!r}, "
                   f"want 1")
    if not isinstance(doc.get("root"), str):
        fail(path, '"root" must be a string')
    wall = require_number(path, doc, "wall_seconds")
    critical = require_number(path, doc, "critical_path_seconds")
    require_number(path, doc, "completed_spans")
    # The analytical invariant the analyzer guarantees by construction.
    if critical > wall + 1e-9:
        fail(path, f"critical_path_seconds {critical} exceeds "
                   f"wall_seconds {wall}")
    for key, fields in (
            ("critical_path", ("tid", "span_seconds", "self_seconds")),
            ("workers", ("tid", "busy_seconds", "idle_seconds",
                         "utilization")),
            ("self_time", ("self_seconds", "count"))):
        entries = doc.get(key)
        if not isinstance(entries, list):
            fail(path, f'no "{key}" array')
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                fail(path, f"{key}[{i}] is not an object")
            for field in fields:
                require_number(path, entry, field, parent=f"{key}[{i}]")
            if key != "workers" and not isinstance(entry.get("name"), str):
                fail(path, f"{key}[{i}].name must be a string")
    for step in doc["critical_path"]:
        if step["self_seconds"] > step["span_seconds"] + 1e-9:
            fail(path, f"critical_path step {step['name']!r} has "
                       f"self_seconds > span_seconds")
    sampler = doc.get("sampler")
    if not isinstance(sampler, dict):
        fail(path, 'no "sampler" object')
    if not isinstance(sampler.get("mode"), str):
        fail(path, "sampler.mode must be a string")
    for key in ("interval_us", "samples", "dropped"):
        require_number(path, sampler, key, parent="sampler")
    folded = doc.get("folded")
    if not isinstance(folded, list):
        fail(path, 'no "folded" array')
    total = 0
    for i, line in enumerate(folded, start=1):
        if not isinstance(line, str):
            fail(path, f"folded[{i - 1}] is not a string")
        total += check_folded_line(path, i, line)
    # The sampler accounting invariant: nothing lost, nothing forged.
    if total != sampler["samples"]:
        fail(path, f"folded counts sum to {total}, sampler.samples is "
                   f"{sampler['samples']}")
    print(f"validate_trace: {path}: ok — profile of {doc['root']!r}, "
          f"critical path {critical:.6f}s of {wall:.6f}s wall, "
          f"{len(folded)} folded stacks / {total} samples")


def validate_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        fail(path, f"cannot parse: {exc}")
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("kind") == "gly.profile":
        validate_profile(path, doc)
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(path, 'no "traceEvents" array')
    metadata = doc.get("metadata", {})
    if metadata:
        if metadata.get("schema_version") != 1:
            fail(path, f"metadata.schema_version is "
                       f"{metadata.get('schema_version')!r}, want 1")
        if metadata.get("kind") != "gly.trace":
            fail(path, f"metadata.kind is {metadata.get('kind')!r}, "
                       f"want 'gly.trace'")

    stacks = {}  # tid -> [span names]
    completed = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(path, f"traceEvents[{i}] is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                fail(path, f"traceEvents[{i}] missing {key!r}")
        if not isinstance(event["name"], str) or not isinstance(
                event["ph"], str):
            fail(path, f"traceEvents[{i}]: name/ph must be strings")
        if not isinstance(event["ts"], (int, float)):
            fail(path, f"traceEvents[{i}]: ts must be a number")
        ph, tid, name = event["ph"], event["tid"], event["name"]
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
        elif ph == "E":
            if not stack:
                fail(path, f"traceEvents[{i}]: 'E' for {name!r} on tid "
                           f"{tid} with no open span")
            if stack[-1] != name:
                fail(path, f"traceEvents[{i}]: 'E' for {name!r} closes "
                           f"{stack[-1]!r} on tid {tid}")
            stack.pop()
            completed += 1
        elif ph == "i":
            if event.get("s") not in ("t", "p", "g"):
                fail(path, f"traceEvents[{i}]: instant event without a "
                           f"valid scope ('s')")
    open_spans = sum(len(s) for s in stacks.values())
    print(f"validate_trace: {path}: ok — {len(events)} events, "
          f"{completed} completed spans, {open_spans} left open")


def validate_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln for ln in fh.read().splitlines() if ln.strip()]
    except OSError as exc:
        fail(path, f"cannot read: {exc}")
    if not lines:
        fail(path, "empty document (missing schema header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        fail(path, f"header is not JSON: {exc}")
    if header.get("schema_version") != 1 or header.get("kind") != \
            "gly.metrics":
        fail(path, f"bad schema header: {lines[0]!r}")

    names = set()
    for i, line in enumerate(lines[1:], start=2):
        try:
            metric = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(path, f"line {i} is not JSON: {exc}")
        name = metric.get("name")
        mtype = metric.get("type")
        if not isinstance(name, str) or not name:
            fail(path, f"line {i}: missing metric name")
        if name in names:
            fail(path, f"line {i}: duplicate metric {name!r}")
        names.add(name)
        if mtype in ("counter", "gauge"):
            if not isinstance(metric.get("value"), (int, float)):
                fail(path, f"line {i}: {name!r} has no numeric value")
            if mtype == "counter" and (not isinstance(metric["value"], int)
                                       or metric["value"] < 0):
                fail(path, f"line {i}: counter {name!r} must be a "
                           f"non-negative integer")
        elif mtype == "histogram":
            for key in ("count", "min", "max", "mean", "p50", "p95", "p99",
                        "items"):
                if key not in metric:
                    fail(path, f"line {i}: histogram {name!r} missing "
                               f"{key!r}")
            items = metric["items"]
            if not isinstance(items, list) or any(
                    not (isinstance(p, list) and len(p) == 2) for p in items):
                fail(path, f"line {i}: histogram {name!r} items must be "
                           f"[value, count] pairs")
            if sum(count for _, count in items) != metric["count"]:
                fail(path, f"line {i}: histogram {name!r} item counts do "
                           f"not sum to count")
        else:
            fail(path, f"line {i}: unknown metric type {mtype!r}")
    print(f"validate_trace: {path}: ok — {len(names)} metrics")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        if path.endswith(".jsonl"):
            validate_metrics(path)
        elif path.endswith(".folded"):
            validate_folded(path)
        else:
            validate_trace(path)


if __name__ == "__main__":
    main()
