#!/usr/bin/env python3
"""Diff a bench --json run against a committed baseline; fail on regression.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.10] [--min-seconds 0.01] [--key kernel,graph]

Both inputs are documents produced by the bench binaries' --json flag
(schema_version 1: {"schema_version", "bench", "records": [...]}; see
DESIGN.md §8 "Performance methodology"). Records are keyed by
(kernel, graph). For every key present in BOTH files, the current
median_seconds is compared against the baseline:

    regression  :=  current_median > baseline_median * (1 + threshold)

subject to a noise floor: pairs whose baseline AND current medians are
below --min-seconds are reported but never gated (micro-times on shared CI
boxes are dominated by scheduler jitter).

Records may carry a "threads" field (worker count the kernel ran with;
absent or 0 = unspecified). A pair whose baseline and current thread counts
differ is skipped with a warning, not gated — a 4-thread baseline median
says nothing about an 8-thread run.

Records may also carry "kteps_input" (input kilo-edges per median second —
a throughput over the *fixed* workload size, comparable run-over-run).
When both sides of a pair report a nonzero kteps_input, the gate
additionally fails the pair if current throughput dropped below
baseline * (1 - threshold). Pairs where either side lacks the field (e.g.
a baseline committed before the field existed) gate on median only.

Exit status: 0 when no gated regression, 1 when at least one kernel
regressed beyond the threshold, 2 on malformed input. Keys present in only
one file are listed as added/removed but do not fail the gate — adding a
kernel must not require regenerating the baseline atomically.

Environment: BENCH_THRESHOLD overrides --threshold (CI knob).
"""

import argparse
import json
import os
import sys


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench_compare: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or "records" not in doc:
        print(f"bench_compare: {path} is not a bench --json document",
              file=sys.stderr)
        sys.exit(2)
    if doc.get("schema_version") != 1:
        print(f"bench_compare: {path}: unsupported schema_version "
              f"{doc.get('schema_version')!r}", file=sys.stderr)
        sys.exit(2)
    records = {}
    for rec in doc["records"]:
        try:
            key = (rec["kernel"], rec["graph"])
            median = float(rec["median_seconds"])
        except (KeyError, TypeError, ValueError) as exc:
            print(f"bench_compare: {path}: malformed record {rec!r}: {exc}",
                  file=sys.stderr)
            sys.exit(2)
        if key in records:
            print(f"bench_compare: {path}: duplicate record key {key}",
                  file=sys.stderr)
            sys.exit(2)
        records[key] = (median, rec)
    return doc.get("bench", "?"), records


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench medians against a committed baseline.")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get("BENCH_THRESHOLD", 0.10)),
                        help="allowed median growth fraction (default 0.10; "
                             "env BENCH_THRESHOLD overrides)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="noise floor: pairs under this median on both "
                             "sides never gate (default 0.01)")
    args = parser.parse_args()

    base_bench, base = load_records(args.baseline)
    cur_bench, cur = load_records(args.current)
    if base_bench != cur_bench:
        print(f"bench_compare: comparing different benches "
              f"({base_bench!r} vs {cur_bench!r})", file=sys.stderr)
        sys.exit(2)

    shared = sorted(set(base) & set(cur))
    added = sorted(set(cur) - set(base))
    removed = sorted(set(base) - set(cur))

    regressions = []
    gated = 0
    print(f"{'kernel':<24} {'graph':<12} {'baseline':>10} {'current':>10} "
          f"{'delta':>8}  verdict")
    print("-" * 78)
    for key in shared:
        b, brec = base[key]
        c, crec = cur[key]
        b_threads = int(brec.get("threads", 0) or 0)
        c_threads = int(crec.get("threads", 0) or 0)
        if b_threads != c_threads:
            print(f"{key[0]:<24} {key[1]:<12} {b:>9.4f}s {c:>9.4f}s "
                  f"{'':>8}  skipped (thread mismatch)")
            print(f"bench_compare: warning: {key[0]} on {key[1]}: baseline "
                  f"ran with {b_threads} thread(s), current with "
                  f"{c_threads} — pair skipped, not gated", file=sys.stderr)
            continue
        gated += 1
        delta = (c - b) / b if b > 0 else float("inf") if c > 0 else 0.0
        noise = b < args.min_seconds and c < args.min_seconds
        regressed = (not noise) and c > b * (1.0 + args.threshold)
        b_kti = float(brec.get("kteps_input", 0.0) or 0.0)
        c_kti = float(crec.get("kteps_input", 0.0) or 0.0)
        kti_regressed = (not noise and b_kti > 0.0 and c_kti > 0.0
                         and c_kti < b_kti * (1.0 - args.threshold))
        if regressed:
            verdict = f"REGRESSED (> +{args.threshold:.0%})"
            regressions.append((key, b, c, delta))
        elif kti_regressed:
            verdict = (f"REGRESSED (kteps_input {b_kti:.0f} -> {c_kti:.0f}, "
                       f"> -{args.threshold:.0%})")
            regressions.append((key, b, c, delta))
        elif noise:
            verdict = "below noise floor"
        else:
            verdict = "ok"
        print(f"{key[0]:<24} {key[1]:<12} {b:>9.4f}s {c:>9.4f}s "
              f"{delta:>+7.1%}  {verdict}")
    for key in added:
        print(f"{key[0]:<24} {key[1]:<12} {'-':>10} "
              f"{cur[key][0]:>9.4f}s {'':>8}  new (not gated)")
    for key in removed:
        print(f"{key[0]:<24} {key[1]:<12} {base[key][0]:>9.4f}s {'-':>10} "
              f"{'':>8}  missing from current (not gated)")

    if not shared:
        print("bench_compare: no shared record keys — nothing to gate",
              file=sys.stderr)
        sys.exit(2)

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed beyond "
              f"+{args.threshold:.0%}:")
        for (kernel, graph), b, c, delta in regressions:
            print(f"  {kernel} on {graph}: {b:.4f}s -> {c:.4f}s ({delta:+.1%})")
        sys.exit(1)
    skipped = len(shared) - gated
    print(f"\nno regressions beyond +{args.threshold:.0%} "
          f"({gated} kernels compared"
          + (f", {skipped} skipped on thread mismatch" if skipped else "")
          + ")")
    sys.exit(0)


if __name__ == "__main__":
    main()
