#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py (run by ci.sh).

Covers the two behaviors most likely to rot silently: the thread-mismatch
skip (a pair whose baseline and current thread counts differ is warned
about and excluded from the gate) and the noise floor (micro-times below
--min-seconds never gate, even at huge relative deltas). Exercised through
the CLI, the same way ci.sh invokes it.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def bench_doc(records, bench="fig4_runtimes"):
    return {"schema_version": 1, "bench": bench, "records": records}


def record(kernel, graph, median, threads=None):
    rec = {"kernel": kernel, "graph": graph, "median_seconds": median}
    if threads is not None:
        rec["threads"] = threads
    return rec


class BenchCompareTest(unittest.TestCase):
    def run_compare(self, baseline, current, *extra_args):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            with open(base_path, "w", encoding="utf-8") as fh:
                json.dump(baseline, fh)
            with open(cur_path, "w", encoding="utf-8") as fh:
                json.dump(current, fh)
            env = {k: v for k, v in os.environ.items()
                   if k != "BENCH_THRESHOLD"}
            return subprocess.run(
                [sys.executable, SCRIPT, base_path, cur_path, *extra_args],
                capture_output=True, text=True, env=env, check=False)

    def test_clean_pass(self):
        result = self.run_compare(
            bench_doc([record("bfs", "rmat12", 1.00)]),
            bench_doc([record("bfs", "rmat12", 1.05)]))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_regression_fails(self):
        result = self.run_compare(
            bench_doc([record("bfs", "rmat12", 1.00)]),
            bench_doc([record("bfs", "rmat12", 1.25)]))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSED", result.stdout)

    def test_thread_mismatch_is_skipped_not_gated(self):
        # A 3x blowup, but at a different thread count: skipped with a
        # warning, and the gate still passes via the other record.
        result = self.run_compare(
            bench_doc([record("etl_parse", "rmat12", 1.00, threads=4),
                       record("etl_build", "rmat12", 1.00, threads=4)]),
            bench_doc([record("etl_parse", "rmat12", 3.00, threads=8),
                       record("etl_build", "rmat12", 1.00, threads=4)]))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("thread mismatch", result.stdout)
        self.assertIn("pair skipped, not gated", result.stderr)

    def test_all_pairs_thread_mismatched_still_passes(self):
        # Everything skipped: nothing regressed, gate passes (shared keys
        # exist, so this is not the "nothing to gate" error).
        result = self.run_compare(
            bench_doc([record("etl_parse", "rmat12", 1.00, threads=4)]),
            bench_doc([record("etl_parse", "rmat12", 9.00, threads=8)]))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("skipped on thread mismatch", result.stdout)

    def test_absent_threads_field_matches_zero(self):
        # threads absent on both sides (older baselines): compared normally.
        result = self.run_compare(
            bench_doc([record("bfs", "rmat12", 1.00)]),
            bench_doc([record("bfs", "rmat12", 2.00)]))
        self.assertEqual(result.returncode, 1)
        # absent on one side only == 0 vs N: mismatch, skipped.
        result = self.run_compare(
            bench_doc([record("bfs", "rmat12", 1.00)]),
            bench_doc([record("bfs", "rmat12", 2.00, threads=4)]))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("thread mismatch", result.stdout)

    def test_noise_floor_suppresses_micro_regressions(self):
        # 5x regression, but both medians are under the 10ms default floor.
        result = self.run_compare(
            bench_doc([record("bfs", "tiny", 0.001)]),
            bench_doc([record("bfs", "tiny", 0.005)]))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("below noise floor", result.stdout)

    def test_noise_floor_edge_crossing_gates(self):
        # Baseline under the floor but current above it: that is a real
        # regression (the floor requires BOTH sides to be micro-times).
        result = self.run_compare(
            bench_doc([record("bfs", "tiny", 0.001)]),
            bench_doc([record("bfs", "tiny", 0.050)]))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_noise_floor_is_configurable(self):
        result = self.run_compare(
            bench_doc([record("bfs", "tiny", 0.001)]),
            bench_doc([record("bfs", "tiny", 0.005)]),
            "--min-seconds", "0.0001")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)

    def test_no_shared_keys_is_an_input_error(self):
        result = self.run_compare(
            bench_doc([record("bfs", "a", 1.0)]),
            bench_doc([record("bfs", "b", 1.0)]))
        self.assertEqual(result.returncode, 2)
        self.assertIn("nothing to gate", result.stderr)

    def test_mismatched_bench_names_rejected(self):
        result = self.run_compare(
            bench_doc([record("bfs", "a", 1.0)], bench="fig4_runtimes"),
            bench_doc([record("bfs", "a", 1.0)], bench="ext_etl_times"))
        self.assertEqual(result.returncode, 2)

    def test_added_and_removed_keys_do_not_gate(self):
        result = self.run_compare(
            bench_doc([record("bfs", "a", 1.0), record("pr", "a", 1.0)]),
            bench_doc([record("bfs", "a", 1.0), record("conn", "a", 1.0)]))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("new (not gated)", result.stdout)
        self.assertIn("missing from current (not gated)", result.stdout)


if __name__ == "__main__":
    unittest.main()
