#!/usr/bin/env bash
# CI entry point. Six stages:
#
#   1. tier-1      — plain build, full test suite (the gate every PR must
#                    hold). The `chaos` label is split out into stage 6 so
#                    its wall-clock cost is attributed to the chaos stage.
#   2. asan        — GLY_SANITIZE=address build running the `robustness` and
#                    `conformance` CTest labels: fault-injection,
#                    checkpoint/recovery, WAL/resume, cancellation, and the
#                    cross-engine kernel-conformance suites — the paths most
#                    valuable to run under a sanitizer.
#   3. tsan        — GLY_SANITIZE=thread build running the `ingest`,
#                    `observability`, `robustness`, and `scheduler` CTest
#                    labels: the parallel ETL pipeline (chunked parsing,
#                    parallel CSR build, reordering), the tracer/metrics-
#                    registry concurrency stress tests, the SIGPROF
#                    sampling-profiler stress (signal handler vs ring
#                    drain vs worker threads, via profiler_test's
#                    observability label), the cancellation/
#                    watchdog/grace-join paths (harness watchdog vs attempt
#                    thread, token polls from every engine), and the
#                    concurrent cell scheduler (jobs=1 vs jobs=4
#                    differential run, admission control, shared journal
#                    writer) under the race detector, where their bugs
#                    would actually show.
#   4. observability — `ctest -L observability` in the tier-1 build (the
#                    golden-trace, metrics round-trip, monitor, profiler,
#                    and 4-engine trace-artifact suites), then cross-checks
#                    the committed sample artifacts (tests/data/
#                    sample_trace.json, sample_metrics.jsonl,
#                    sample_profile.json, sample_profile.folded) against
#                    the documented schemas with scripts/validate_trace.py
#                    — the Python validator and the C++ exporter agreeing
#                    on the same bytes is the cross-implementation schema
#                    test — runs the bench_compare.py unit tests, and
#                    finishes with a profiler smoke: a real
#                    `graphalytics_run --profile` of BFS+PR on an rmat-12
#                    graph across all four engines whose trace.json,
#                    per-cell profile-*.json, profile.folded, and
#                    trace_analyze / results_query outputs must all
#                    validate.
#   5. bench-smoke — fig4_runtimes kernel duel, the ext_etl_times
#                    parse/build duel, and the engines_hotpath engine-level
#                    bench (pooled hot paths, scale ${ENGINE_BENCH_SCALE}),
#                    each gated by scripts/bench_compare.py against its
#                    committed baseline (BENCH_kernels.json / BENCH_etl.json
#                    / BENCH_engines.json; >10% median regression fails; see
#                    DESIGN.md §8). BENCH_THRESHOLD
#                    overrides the gate for noisy boxes; regenerate a
#                    baseline with the same bench invocation after
#                    intentional perf changes. The ETL duel pins
#                    --threads ${ETL_THREADS} so the baseline's thread count
#                    matches across boxes (bench_compare skips, rather than
#                    gates, thread-mismatched pairs).
#   6. chaos       — crash-restart chaos driver (`ctest -L chaos`):
#                    SIGKILLs a real graphalytics_run child mid-matrix ten
#                    times and asserts --resume completes a validated,
#                    journal-consistent matrix (no lost or duplicated
#                    cells), both serially and with the concurrent cell
#                    scheduler (--jobs 4, kills landing while several cells
#                    share the journal writer). See tools/chaos_runner.cc.
#
# Build directories are separate from the developer's `build/` so a CI run
# never clobbers an interactive configuration. Override with TIER1_DIR /
# ASAN_DIR / TSAN_DIR; JOBS controls parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TIER1_DIR="${TIER1_DIR:-build-ci}"
ASAN_DIR="${ASAN_DIR:-build-ci-asan}"
TSAN_DIR="${TSAN_DIR:-build-ci-tsan}"
BENCH_SCALE="${BENCH_SCALE:-12}"
BENCH_REPEATS="${BENCH_REPEATS:-3}"
ENGINE_BENCH_SCALE="${ENGINE_BENCH_SCALE:-14}"
ETL_THREADS="${ETL_THREADS:-4}"

echo "==> [1/6] tier-1: configure + build (${TIER1_DIR})"
cmake -B "${TIER1_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${TIER1_DIR}" -j "${JOBS}"

echo "==> [1/6] tier-1: full test suite (chaos split into stage 6)"
ctest --test-dir "${TIER1_DIR}" --output-on-failure -j "${JOBS}" -LE chaos

echo "==> [2/6] asan: configure + build (${ASAN_DIR}, GLY_SANITIZE=address)"
cmake -B "${ASAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGLY_SANITIZE=address
cmake --build "${ASAN_DIR}" -j "${JOBS}"

echo "==> [2/6] asan: robustness + conformance + hotpath suites"
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -L 'robustness|conformance|hotpath'

echo "==> [3/6] tsan: configure + build (${TSAN_DIR}, GLY_SANITIZE=thread)"
cmake -B "${TSAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGLY_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}"

echo "==> [3/6] tsan: ingest + observability + robustness + scheduler + hotpath (race detector)"
ctest --test-dir "${TSAN_DIR}" --output-on-failure -j "${JOBS}" \
      -L 'ingest|observability|robustness|scheduler|hotpath'

echo "==> [4/6] observability: golden-trace suite + committed sample schemas"
ctest --test-dir "${TIER1_DIR}" --output-on-failure -j "${JOBS}" \
      -L observability
python3 scripts/validate_trace.py tests/data/sample_trace.json \
    tests/data/sample_metrics.jsonl tests/data/sample_profile.json \
    tests/data/sample_profile.folded
python3 scripts/bench_compare_test.py

echo "==> [4/6] observability: --profile smoke (BFS+PR, rmat-12, 4 engines)"
PROFILE_DIR="${TIER1_DIR}/profile-smoke"
rm -rf "${PROFILE_DIR}"
mkdir -p "${PROFILE_DIR}"
cat > "${PROFILE_DIR}/benchmark.properties" <<PROPS
graphs = g500
graph.g500.source = rmat
graph.g500.scale = 12
graph.g500.edge_factor = 16
platforms = giraph, graphx, mapreduce, neo4j
algorithms = bfs, pr
report.dir = ${PROFILE_DIR}/report
validate = true
monitor = false
PROPS
"${TIER1_DIR}/tools/graphalytics_run" --profile full \
    "${PROFILE_DIR}/benchmark.properties" > "${PROFILE_DIR}/report.txt"
# Every artifact the profiled run wrote must pass the schema validator:
# the run-wide trace + profile, and all eight per-cell pairs.
python3 scripts/validate_trace.py \
    "${PROFILE_DIR}"/report/trace/trace.json \
    "${PROFILE_DIR}"/report/trace/profile.json \
    "${PROFILE_DIR}"/report/trace/profile.folded \
    "${PROFILE_DIR}"/report/trace/trace-*.json \
    "${PROFILE_DIR}"/report/trace/profile-*.json \
    "${PROFILE_DIR}"/report/trace/metrics.jsonl
# ... and the offline analytics tools must read them back.
"${TIER1_DIR}/tools/trace_analyze" \
    "${PROFILE_DIR}/report/trace/trace.json" \
    --out "${PROFILE_DIR}/profile-offline.json"
python3 scripts/validate_trace.py "${PROFILE_DIR}/profile-offline.json"
"${TIER1_DIR}/tools/results_query" --top-phases \
    "${PROFILE_DIR}/report/trace/profile.json" --top 5
"${TIER1_DIR}/tools/results_query" --critical-path \
    "${PROFILE_DIR}/report/trace/profile.json"

echo "==> [5/6] bench-smoke: kernel duel at scale ${BENCH_SCALE} vs baseline"
"${TIER1_DIR}/bench/fig4_runtimes" --kernels-only \
    --kernel-scale "${BENCH_SCALE}" --repeats "${BENCH_REPEATS}" \
    --json "${TIER1_DIR}/bench_kernels_current.json"
python3 scripts/bench_compare.py BENCH_kernels.json \
    "${TIER1_DIR}/bench_kernels_current.json"

echo "==> [5/6] bench-smoke: ETL duel at scale ${BENCH_SCALE}, ${ETL_THREADS} threads"
"${TIER1_DIR}/bench/ext_etl_times" --kernels-only \
    --kernel-scale "${BENCH_SCALE}" --repeats "${BENCH_REPEATS}" \
    --threads "${ETL_THREADS}" \
    --json "${TIER1_DIR}/bench_etl_current.json"
python3 scripts/bench_compare.py BENCH_etl.json \
    "${TIER1_DIR}/bench_etl_current.json"

echo "==> [5/6] bench-smoke: engine hot paths at scale ${ENGINE_BENCH_SCALE}"
"${TIER1_DIR}/bench/engines_hotpath" \
    --kernel-scale "${ENGINE_BENCH_SCALE}" --repeats "${BENCH_REPEATS}" \
    --json "${TIER1_DIR}/bench_engines_current.json"
python3 scripts/bench_compare.py BENCH_engines.json \
    "${TIER1_DIR}/bench_engines_current.json"

echo "==> [6/6] chaos: SIGKILL/resume crash-restart driver"
ctest --test-dir "${TIER1_DIR}" --output-on-failure -L chaos

echo "==> ci passed"
