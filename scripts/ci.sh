#!/usr/bin/env bash
# CI entry point. Three stages:
#
#   1. tier-1      — plain build, full test suite (the gate every PR must
#                    hold).
#   2. asan        — GLY_SANITIZE=address build running the `robustness` and
#                    `conformance` CTest labels: fault-injection,
#                    checkpoint/recovery, WAL/resume, and the cross-engine
#                    kernel-conformance suites — the paths most valuable to
#                    run under a sanitizer.
#   3. bench-smoke — fig4_runtimes kernel duel at smoke scale, gated by
#                    scripts/bench_compare.py against the committed
#                    BENCH_kernels.json baseline (>10% median regression
#                    fails; see DESIGN.md §8). BENCH_THRESHOLD overrides the
#                    gate for noisy boxes; regenerate the baseline with the
#                    same fig4_runtimes invocation after intentional perf
#                    changes.
#
# Build directories are separate from the developer's `build/` so a CI run
# never clobbers an interactive configuration. Override with TIER1_DIR /
# ASAN_DIR; JOBS controls parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TIER1_DIR="${TIER1_DIR:-build-ci}"
ASAN_DIR="${ASAN_DIR:-build-ci-asan}"
BENCH_SCALE="${BENCH_SCALE:-12}"
BENCH_REPEATS="${BENCH_REPEATS:-3}"

echo "==> [1/3] tier-1: configure + build (${TIER1_DIR})"
cmake -B "${TIER1_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${TIER1_DIR}" -j "${JOBS}"

echo "==> [1/3] tier-1: full test suite"
ctest --test-dir "${TIER1_DIR}" --output-on-failure -j "${JOBS}"

echo "==> [2/3] asan: configure + build (${ASAN_DIR}, GLY_SANITIZE=address)"
cmake -B "${ASAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGLY_SANITIZE=address
cmake --build "${ASAN_DIR}" -j "${JOBS}"

echo "==> [2/3] asan: robustness + conformance suites"
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" \
      -L 'robustness|conformance'

echo "==> [3/3] bench-smoke: kernel duel at scale ${BENCH_SCALE} vs baseline"
"${TIER1_DIR}/bench/fig4_runtimes" --kernels-only \
    --kernel-scale "${BENCH_SCALE}" --repeats "${BENCH_REPEATS}" \
    --json "${TIER1_DIR}/bench_kernels_current.json"
python3 scripts/bench_compare.py BENCH_kernels.json \
    "${TIER1_DIR}/bench_kernels_current.json"

echo "==> ci passed"
