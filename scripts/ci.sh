#!/usr/bin/env bash
# CI entry point. Two stages:
#
#   1. tier-1  — plain build, full test suite (the gate every PR must hold).
#   2. asan    — GLY_SANITIZE=address build running the `robustness` CTest
#                label: the fault-injection, checkpoint/recovery, WAL and
#                resume suites, which exercise crash paths that are the most
#                valuable to run under a sanitizer.
#
# Build directories are separate from the developer's `build/` so a CI run
# never clobbers an interactive configuration. Override with TIER1_DIR /
# ASAN_DIR; JOBS controls parallelism (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TIER1_DIR="${TIER1_DIR:-build-ci}"
ASAN_DIR="${ASAN_DIR:-build-ci-asan}"

echo "==> [1/2] tier-1: configure + build (${TIER1_DIR})"
cmake -B "${TIER1_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${TIER1_DIR}" -j "${JOBS}"

echo "==> [1/2] tier-1: full test suite"
ctest --test-dir "${TIER1_DIR}" --output-on-failure -j "${JOBS}"

echo "==> [2/2] asan: configure + build (${ASAN_DIR}, GLY_SANITIZE=address)"
cmake -B "${ASAN_DIR}" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DGLY_SANITIZE=address
cmake --build "${ASAN_DIR}" -j "${JOBS}"

echo "==> [2/2] asan: robustness suites (ctest -L robustness)"
ctest --test-dir "${ASAN_DIR}" --output-on-failure -j "${JOBS}" -L robustness

echo "==> ci passed"
